// Radix-partitioned parallel hash join tests: the parallel join must be
// byte-identical to the serial join — which itself equals a nested-loop
// reference — across thread counts and key pathologies (duplicate keys,
// null keys, cross-type numeric keys, forced hash collisions, empty build
// side), and must stay correct while writers churn the scanned tables.
// Runs under ThreadSanitizer via ./ci.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/database.h"
#include "exec/executor.h"

namespace htap {
namespace {

Schema FactSchema() {
  return Schema({{"id", Type::kInt64}, {"fk", Type::kInt64},
                 {"amount", Type::kDouble}});
}

Schema DimSchema() {
  return Schema({{"id", Type::kInt64}, {"name", Type::kString},
                 {"weight", Type::kDouble}});
}

/// Ground truth with the join's documented output order: left rows in input
/// order, and for each left row its matches in right (build) input order.
std::vector<Row> NestedLoopJoin(const std::vector<Row>& left,
                                const std::vector<Row>& right, int left_col,
                                int right_col) {
  std::vector<Row> out;
  for (const Row& l : left) {
    const Value& k = l.Get(static_cast<size_t>(left_col));
    if (k.is_null()) continue;
    for (const Row& r : right) {
      const Value& rk = r.Get(static_cast<size_t>(right_col));
      if (rk.is_null() || rk != k) continue;
      Row joined = l;
      for (const Value& v : r.values()) joined.Append(v);
      out.push_back(std::move(joined));
    }
  }
  return out;
}

struct Dataset {
  std::vector<Row> left;
  std::vector<Row> right;
};

/// Duplicate keys on both sides, nulls sprinkled on both sides, and
/// cross-type numeric keys (int64 fact keys joining double dimension keys).
Dataset PathologicalDataset() {
  Dataset d;
  for (int64_t i = 0; i < 3000; ++i) {
    Row r{Value(i), Value(i % 97), Value(i * 0.25)};
    if (i % 31 == 0) r.Set(1, Value::Null());
    if (i % 13 == 0) r.Set(1, Value(static_cast<double>(i % 97)));  // cross-type
    d.left.push_back(std::move(r));
  }
  for (int64_t i = 0; i < 2000; ++i) {
    // Keys 0..96 each appear ~20 times; every 41st key is NULL.
    Row r{Value(i % 97), Value("dim_" + std::to_string(i)), Value(i * 1.5)};
    if (i % 41 == 0) r.Set(0, Value::Null());
    d.right.push_back(std::move(r));
  }
  return d;
}

class ParallelJoinTest : public ::testing::Test {
 protected:
  ParallelJoinTest() : pool_(8, "test-join-ap") {}

  /// Parallel context forcing the partitioned path regardless of build size.
  ExecContext Par(size_t threads, uint64_t hash_mask = ~0ull) {
    ExecContext exec{&pool_, threads};
    exec.min_parallel_join_build = 1;
    exec.join_hash_mask = hash_mask;
    return exec;
  }

  ThreadPool pool_;
};

TEST_F(ParallelJoinTest, MatchesNestedLoopReferenceAcrossThreadCounts) {
  const Dataset d = PathologicalDataset();
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  ASSERT_FALSE(reference.empty());

  const auto serial = HashJoin(d.left, d.right, 1, 0);
  EXPECT_EQ(reference, serial);

  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    JoinStats stats;
    const auto par = HashJoin(d.left, d.right, 1, 0, Par(threads), &stats);
    // Exact equality including row order: probe morsels concatenate in
    // morsel order and per-key chains preserve build input order.
    EXPECT_EQ(reference, par) << threads << " threads";
    EXPECT_TRUE(stats.parallel);
    EXPECT_GT(stats.partitions, 1u);
    EXPECT_EQ(stats.build_rows, d.right.size());
    EXPECT_EQ(stats.probe_rows, d.left.size());
    EXPECT_EQ(stats.output_rows, reference.size());
  }
}

TEST_F(ParallelJoinTest, ForcedHashCollisionsStillConfirmKeys) {
  // A 4-bit hash mask funnels all keys into 16 hash values, so nearly every
  // probe hits hash matches with unequal keys — the collision-confirm
  // compare must reject them, serially and in parallel.
  const Dataset d = PathologicalDataset();
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  for (uint64_t mask : {uint64_t{0xF}, uint64_t{0x1}, uint64_t{0}}) {
    ExecContext serial_masked;
    serial_masked.join_hash_mask = mask;
    EXPECT_EQ(reference, HashJoin(d.left, d.right, 1, 0, serial_masked))
        << "serial, mask " << mask;
    for (size_t threads : {size_t{2}, size_t{4}}) {
      EXPECT_EQ(reference, HashJoin(d.left, d.right, 1, 0, Par(threads, mask)))
          << threads << " threads, mask " << mask;
    }
  }
}

TEST_F(ParallelJoinTest, EmptySidesAndNoMatches) {
  const Dataset d = PathologicalDataset();
  // Empty build side.
  EXPECT_TRUE(HashJoin(d.left, {}, 1, 0, Par(4)).empty());
  // Empty probe side.
  EXPECT_TRUE(HashJoin({}, d.right, 1, 0, Par(4)).empty());
  // Disjoint key domains.
  std::vector<Row> far;
  for (int64_t i = 0; i < 100; ++i)
    far.push_back(Row{Value(i + 100000), Value("far"), Value(0.0)});
  EXPECT_TRUE(HashJoin(d.left, far, 1, 0, Par(4)).empty());
}

TEST_F(ParallelJoinTest, SmallBuildFallsBackToSerial) {
  const Dataset d = PathologicalDataset();
  ExecContext exec{&pool_, 4};  // default min_parallel_join_build = 4096
  ASSERT_LT(d.right.size(), exec.min_parallel_join_build);
  JoinStats stats;
  const auto out = HashJoin(d.left, d.right, 1, 0, exec, &stats);
  EXPECT_FALSE(stats.parallel);
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(out, HashJoin(d.left, d.right, 1, 0));
}

TEST_F(ParallelJoinTest, QuotaThrottledPoolStaysCorrect) {
  // The resource scheduler shrinks the AP pool's concurrency quota to
  // throttle OLAP; join morsels must queue, not wedge or corrupt.
  const Dataset d = PathologicalDataset();
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  pool_.SetConcurrencyQuota(1);
  EXPECT_EQ(reference, HashJoin(d.left, d.right, 1, 0, Par(8)));
  pool_.SetConcurrencyQuota(0);
}

// Reader/writer stress: parallel joins over ScanHtap snapshots while a
// writer churns the fact table with AppendBatch/DeleteKey/Compact. Every
// fact row carries fk = id % kDimRows and the dimension is static with
// unique keys, so each scanned fact row must join to exactly one dimension
// row whose payload is a pure function of the key.
TEST_F(ParallelJoinTest, ConcurrentJoinsAgainstChurningFactTable) {
  constexpr int64_t kDimRows = 200;
  ColumnTable fact(FactSchema());
  ColumnTable dim(DimSchema());
  std::vector<Row> dim_rows;
  for (int64_t i = 0; i < kDimRows; ++i)
    dim_rows.push_back(
        Row{Value(i), Value("dim_" + std::to_string(i)), Value(i * 2.0)});
  dim.AppendBatch(dim_rows, 1);

  std::vector<Row> seed;
  for (int64_t id = 0; id < 512; ++id)
    seed.push_back(Row{Value(id), Value(id % kDimRows), Value(id * 0.5)});
  fact.AppendBatch(seed, 1);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    CSN csn = 100;
    for (int iter = 0; iter < 120; ++iter) {
      std::vector<Row> batch;
      const int64_t base = 1000 + (iter % 10) * 100;
      for (int64_t id = base; id < base + 40; ++id)
        batch.push_back(Row{Value(id), Value(id % kDimRows), Value(iter * 1.0)});
      fact.AppendBatch(batch, ++csn);
      for (int64_t id = base; id < base + 10; ++id) fact.DeleteKey(id, csn);
      if (iter % 16 == 15) fact.Compact();
    }
    done.store(true);
  });

  auto reader = [&] {
    ExecContext exec{&pool_, 4};
    exec.min_parallel_join_build = 1;
    do {
      const auto facts = ScanHtap(fact, nullptr, kMaxCSN - 1,
                                  Predicate::True(), {}, exec, nullptr);
      const auto dims = ScanHtap(dim, nullptr, kMaxCSN - 1, Predicate::True(),
                                 {}, exec, nullptr);
      ASSERT_EQ(dims.size(), static_cast<size_t>(kDimRows));
      const auto joined = HashJoin(facts, dims, 1, 0, exec);
      // Unique dimension keys: every fact row matches exactly once.
      EXPECT_EQ(joined.size(), facts.size());
      for (const Row& r : joined) {
        const int64_t fk = r.Get(1).AsInt64();
        EXPECT_EQ(r.Get(3).AsInt64(), fk);  // dim id == fact fk
        EXPECT_EQ(r.Get(4).AsString(), "dim_" + std::to_string(fk));
        EXPECT_DOUBLE_EQ(r.Get(5).AsDouble(), fk * 2.0);
      }
    } while (!done.load());
  };
  std::thread r1(reader), r2(reader);
  writer.join();
  r1.join();
  r2.join();
}

// End-to-end: a parallel-join database and a serial database must return
// identical rows for join queries (join + filter pushdown + aggregate +
// order, and a plain join whose output order is itself deterministic).
TEST(ParallelJoinDatabaseTest, ParallelAndSerialEnginesAgreeOnJoins) {
  auto open = [](size_t threads) {
    DatabaseOptions opts;
    opts.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
    opts.background_sync = false;
    opts.parallel_scan_threads = threads;
    opts.parallel_join_min_build_rows = 1;  // exercise the radix path
    auto res = Database::Open(opts);
    EXPECT_TRUE(res.ok());
    return std::move(*res);
  };
  auto serial_db = open(1);
  auto par_db = open(4);
  for (auto* db : {serial_db.get(), par_db.get()}) {
    ASSERT_TRUE(db->CreateTable("fact", FactSchema()).ok());
    ASSERT_TRUE(db->CreateTable("dim", DimSchema()).ok());
    for (int64_t i = 0; i < 600; ++i)
      ASSERT_TRUE(db->InsertRow("fact", Row{Value(i), Value(i % 50),
                                            Value(i * 0.25)})
                      .ok());
    for (int64_t i = 0; i < 50; ++i)
      ASSERT_TRUE(db->InsertRow("dim", Row{Value(i),
                                           Value("d" + std::to_string(i)),
                                           Value(i * 3.0)})
                      .ok());
    ASSERT_TRUE(db->ForceSyncAll().ok());
  }

  // Join + group + order.
  QueryPlan grouped;
  grouped.table = "fact";
  grouped.has_join = true;
  grouped.join_table = "dim";
  grouped.left_col = 1;
  grouped.right_col = 0;
  grouped.group_by = {4};  // dim.name in the combined layout
  grouped.aggs = {AggSpec::Count("n"), AggSpec::Sum(2, "amt")};
  grouped.order_by = 0;

  // Join with right-side predicate pushdown, no aggregation: the plain
  // join's output order is deterministic (left scan order), so rows must
  // match exactly.
  QueryPlan filtered;
  filtered.table = "fact";
  filtered.where = Predicate::Ge(0, Value(int64_t{100}));
  filtered.has_join = true;
  filtered.join_table = "dim";
  filtered.join_where = Predicate::Lt(2, Value(60.0));  // dim.weight
  filtered.left_col = 1;
  filtered.right_col = 0;

  for (const QueryPlan& plan : {grouped, filtered}) {
    QueryExecInfo serial_info, par_info;
    auto a = serial_db->Query(plan, &serial_info);
    auto b = par_db->Query(plan, &par_info);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->rows, b->rows);
    EXPECT_FALSE(serial_info.join.parallel);
    EXPECT_TRUE(par_info.join.parallel);
    EXPECT_EQ(serial_info.join.output_rows, par_info.join.output_rows);
  }
}

}  // namespace
}  // namespace htap
