// MVCC row store + transaction manager tests: snapshot isolation
// semantics, write-write conflicts (first-updater-wins), aborts, own-write
// visibility, change publication, vacuum, recovery apply, and a randomized
// snapshot-consistency property test.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "storage/mvcc_row_store.h"
#include "txn/txn_manager.h"
#include "wal/recovery.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"val", Type::kInt64},
                 {"name", Type::kString}});
}

Row MakeRow(Key id, int64_t val, const std::string& name = "n") {
  return Row{Value(id), Value(val), Value(name)};
}

class MvccTest : public ::testing::Test {
 protected:
  MvccTest() : store_(1, TestSchema(), &mgr_, nullptr) {}
  TransactionManager mgr_;
  MvccRowStore store_;
};

TEST_F(MvccTest, InsertCommitRead) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(store_.Insert(txn.get(), MakeRow(1, 10)).ok());
  ASSERT_TRUE(mgr_.Commit(txn.get()).ok());
  Row out;
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 10);
  EXPECT_EQ(store_.ApproxRowCount(), 1u);
}

TEST_F(MvccTest, UncommittedInvisibleToOthers) {
  auto writer = mgr_.Begin();
  ASSERT_TRUE(store_.Insert(writer.get(), MakeRow(1, 10)).ok());
  Row out;
  EXPECT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).IsNotFound());
  // But visible to itself.
  EXPECT_TRUE(store_.Get(writer->snapshot(), 1, &out).ok());
  mgr_.Commit(writer.get());
}

TEST_F(MvccTest, SnapshotIgnoresLaterCommits) {
  auto t1 = mgr_.Begin();
  store_.Insert(t1.get(), MakeRow(1, 10));
  mgr_.Commit(t1.get());

  const Snapshot old_snap = mgr_.CurrentSnapshot();

  auto t2 = mgr_.Begin();
  Row row = MakeRow(1, 20);
  ASSERT_TRUE(store_.Update(t2.get(), row).ok());
  mgr_.Commit(t2.get());

  Row out;
  ASSERT_TRUE(store_.Get(old_snap, 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 10);  // the old version
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 20);
}

TEST_F(MvccTest, WriteWriteConflictAbortsSecondWriter) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 1));
  mgr_.Commit(t0.get());

  auto t1 = mgr_.Begin();
  auto t2 = mgr_.Begin();
  ASSERT_TRUE(store_.Update(t1.get(), MakeRow(1, 11)).ok());
  EXPECT_TRUE(store_.Update(t2.get(), MakeRow(1, 22)).IsConflict());
  EXPECT_GE(mgr_.conflicts(), 1u);
  mgr_.Commit(t1.get());
  mgr_.Abort(t2.get());
  Row out;
  store_.Get(mgr_.CurrentSnapshot(), 1, &out);
  EXPECT_EQ(out.Get(1).AsInt64(), 11);
}

TEST_F(MvccTest, ConflictWithCommittedWriterAfterSnapshot) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 1));
  mgr_.Commit(t0.get());

  auto t1 = mgr_.Begin();  // snapshot before t2's commit
  auto t2 = mgr_.Begin();
  store_.Update(t2.get(), MakeRow(1, 2));
  mgr_.Commit(t2.get());
  // First-committer-wins under SI: t1 must not clobber.
  EXPECT_TRUE(store_.Update(t1.get(), MakeRow(1, 3)).IsConflict());
  mgr_.Abort(t1.get());
}

TEST_F(MvccTest, AbortRollsBackInsertUpdateDelete) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 1));
  store_.Insert(t0.get(), MakeRow(2, 2));
  mgr_.Commit(t0.get());

  auto t1 = mgr_.Begin();
  ASSERT_TRUE(store_.Insert(t1.get(), MakeRow(3, 3)).ok());
  ASSERT_TRUE(store_.Update(t1.get(), MakeRow(1, 100)).ok());
  ASSERT_TRUE(store_.Delete(t1.get(), 2).ok());
  ASSERT_TRUE(mgr_.Abort(t1.get()).ok());

  Row out;
  EXPECT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 3, &out).IsNotFound());
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 1);
  EXPECT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 2, &out).ok());
}

TEST_F(MvccTest, DeleteThenReinsert) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 1));
  mgr_.Commit(t0.get());

  auto t1 = mgr_.Begin();
  ASSERT_TRUE(store_.Delete(t1.get(), 1).ok());
  mgr_.Commit(t1.get());
  Row out;
  EXPECT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).IsNotFound());

  auto t2 = mgr_.Begin();
  ASSERT_TRUE(store_.Insert(t2.get(), MakeRow(1, 2)).ok());
  mgr_.Commit(t2.get());
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 2);
}

TEST_F(MvccTest, InsertDuplicateFails) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 1));
  mgr_.Commit(t0.get());
  auto t1 = mgr_.Begin();
  EXPECT_TRUE(store_.Insert(t1.get(), MakeRow(1, 9)).IsAlreadyExists());
  mgr_.Abort(t1.get());
}

TEST_F(MvccTest, OwnWriteReadAndInPlaceUpdate) {
  auto t = mgr_.Begin();
  store_.Insert(t.get(), MakeRow(1, 1));
  ASSERT_TRUE(store_.Update(t.get(), MakeRow(1, 2)).ok());  // own uncommitted
  Row out;
  ASSERT_TRUE(store_.Get(t->snapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 2);
  ASSERT_TRUE(store_.Delete(t.get(), 1).ok());
  EXPECT_TRUE(store_.Get(t->snapshot(), 1, &out).IsNotFound());
  mgr_.Commit(t.get());
  EXPECT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).IsNotFound());
}

TEST_F(MvccTest, ScanSeesConsistentSnapshot) {
  auto t0 = mgr_.Begin();
  for (Key k = 0; k < 50; ++k) store_.Insert(t0.get(), MakeRow(k, k));
  mgr_.Commit(t0.get());
  const Snapshot snap = mgr_.CurrentSnapshot();

  auto t1 = mgr_.Begin();
  store_.Delete(t1.get(), 10);
  store_.Update(t1.get(), MakeRow(20, 999));
  store_.Insert(t1.get(), MakeRow(100, 100));
  mgr_.Commit(t1.get());

  size_t count = 0;
  int64_t sum = 0;
  store_.Scan(snap, [&](Key, const Row& r) {
    ++count;
    sum += r.Get(1).AsInt64();
    return true;
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST_F(MvccTest, ScanRangeBounds) {
  auto t0 = mgr_.Begin();
  for (Key k = 0; k < 100; ++k) store_.Insert(t0.get(), MakeRow(k, k));
  mgr_.Commit(t0.get());
  std::vector<Key> keys;
  store_.ScanRange(mgr_.CurrentSnapshot(), 10, 15, [&](Key k, const Row&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<Key>{10, 11, 12, 13, 14, 15}));
}

TEST_F(MvccTest, ChangeSinkReceivesCommitOrderedEvents) {
  struct CollectingSink : ChangeSink {
    std::vector<ChangeEvent> events;
    void OnCommit(const std::vector<ChangeEvent>& evs) override {
      events.insert(events.end(), evs.begin(), evs.end());
    }
  } sink;
  mgr_.RegisterSink(&sink);

  auto t = mgr_.Begin();
  store_.Insert(t.get(), MakeRow(1, 1));
  store_.Update(t.get(), MakeRow(1, 2));
  store_.Insert(t.get(), MakeRow(2, 2));
  mgr_.Commit(t.get());

  // Aborted transactions publish nothing.
  auto t2 = mgr_.Begin();
  store_.Insert(t2.get(), MakeRow(3, 3));
  mgr_.Abort(t2.get());

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].op, ChangeOp::kInsert);
  EXPECT_EQ(sink.events[1].op, ChangeOp::kUpdate);
  EXPECT_EQ(sink.events[0].csn, sink.events[1].csn);
  EXPECT_GT(sink.events[0].csn, 0u);
  mgr_.UnregisterSink(&sink);
}

TEST_F(MvccTest, VacuumReclaimsDeadVersions) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 0));
  mgr_.Commit(t0.get());
  for (int i = 1; i <= 20; ++i) {
    auto t = mgr_.Begin();
    store_.Update(t.get(), MakeRow(1, i));
    mgr_.Commit(t.get());
  }
  EXPECT_EQ(store_.VersionCount(), 21u);
  const size_t reclaimed = store_.Vacuum(mgr_.Watermark());
  EXPECT_EQ(reclaimed, 20u);
  EXPECT_EQ(store_.VersionCount(), 1u);
  Row out;
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 20);
}

TEST_F(MvccTest, VacuumPreservesVersionsVisibleToActiveTxns) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 0));
  mgr_.Commit(t0.get());

  auto reader = mgr_.Begin();  // holds the watermark down
  auto t1 = mgr_.Begin();
  store_.Update(t1.get(), MakeRow(1, 1));
  mgr_.Commit(t1.get());

  store_.Vacuum(mgr_.Watermark());
  Row out;
  ASSERT_TRUE(store_.Get(reader->snapshot(), 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 0);  // old version survived
  mgr_.Commit(reader.get());
}

TEST_F(MvccTest, ApplyCommittedMatchesTransactionalPath) {
  MvccRowStore replica(1, TestSchema(), &mgr_, nullptr);
  replica.ApplyCommitted(ChangeOp::kInsert, 1, MakeRow(1, 10), 5);
  replica.ApplyCommitted(ChangeOp::kUpdate, 1, MakeRow(1, 20), 6);
  replica.ApplyCommitted(ChangeOp::kDelete, 2, Row{}, 7);

  Row out;
  ASSERT_TRUE(replica.Get(Snapshot{10, 0}, 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 20);
  // Time travel: at CSN 5 the first version is visible.
  ASSERT_TRUE(replica.Get(Snapshot{5, 0}, 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 10);
}

TEST_F(MvccTest, WalRecoveryReproducesCommittedState) {
  WalWriter wal({});
  TransactionManager mgr(&wal);
  MvccRowStore store(1, TestSchema(), &mgr, &wal);

  auto t1 = mgr.Begin();
  store.Insert(t1.get(), MakeRow(1, 10));
  store.Insert(t1.get(), MakeRow(2, 20));
  mgr.Commit(t1.get());
  auto t2 = mgr.Begin();
  store.Update(t2.get(), MakeRow(1, 11));
  store.Delete(t2.get(), 2);
  mgr.Commit(t2.get());
  auto t3 = mgr.Begin();  // crash before commit: must not replay
  store.Insert(t3.get(), MakeRow(9, 99));
  // (no commit)

  TransactionManager mgr2;
  MvccRowStore recovered(1, TestSchema(), &mgr2, nullptr);
  const auto records = WalReader::Parse(wal.ContentsForTest());
  ReplayWal(records, [&](const WalRecord& r, CSN csn) {
    const ChangeOp op = r.type == WalRecordType::kInsert   ? ChangeOp::kInsert
                        : r.type == WalRecordType::kUpdate ? ChangeOp::kUpdate
                                                           : ChangeOp::kDelete;
    recovered.ApplyCommitted(op, r.key, r.row, csn);
  });

  Row out;
  ASSERT_TRUE(recovered.Get(Snapshot{kMaxCSN - 1, 0}, 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 11);
  EXPECT_TRUE(recovered.Get(Snapshot{kMaxCSN - 1, 0}, 2, &out).IsNotFound());
  EXPECT_TRUE(recovered.Get(Snapshot{kMaxCSN - 1, 0}, 9, &out).IsNotFound());
  mgr.Abort(t3.get());
}

TEST_F(MvccTest, ConcurrentDisjointWritersAllCommit) {
  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = mgr_.Begin();
        ASSERT_TRUE(
            store_.Insert(txn.get(), MakeRow(t * 1000 + i, i)).ok());
        ASSERT_TRUE(mgr_.Commit(txn.get()).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store_.ApproxRowCount(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(mgr_.commits(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(MvccTest, ConcurrentContendedWritersSerialize) {
  auto t0 = mgr_.Begin();
  store_.Insert(t0.get(), MakeRow(1, 0));
  mgr_.Commit(t0.get());

  constexpr int kThreads = 4, kAttempts = 100;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        auto txn = mgr_.Begin();
        Row cur;
        if (!store_.Get(txn->snapshot(), 1, &cur).ok()) {
          mgr_.Abort(txn.get());
          continue;
        }
        Row next = MakeRow(1, cur.Get(1).AsInt64() + 1);
        if (store_.Update(txn.get(), next).ok() &&
            mgr_.Commit(txn.get()).ok()) {
          committed.fetch_add(1);
        } else if (txn->active()) {
          mgr_.Abort(txn.get());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  Row out;
  ASSERT_TRUE(store_.Get(mgr_.CurrentSnapshot(), 1, &out).ok());
  // Counter equals the number of successful increments: no lost updates.
  EXPECT_EQ(out.Get(1).AsInt64(), committed.load());
  EXPECT_GT(committed.load(), 0);
}

// Property: a snapshot taken at any point sees exactly the committed state
// as of that point, regardless of later activity.
TEST_F(MvccTest, PropertySnapshotStability) {
  Random rng(99);
  std::map<Key, int64_t> model;  // committed state
  std::vector<std::pair<Snapshot, std::map<Key, int64_t>>> checkpoints;

  for (int step = 0; step < 500; ++step) {
    auto txn = mgr_.Begin();
    bool ok = true;
    std::map<Key, std::pair<bool, int64_t>> pending;  // key -> (del, val)
    const int ops = 1 + static_cast<int>(rng.Uniform(4));
    for (int o = 0; o < ops && ok; ++o) {
      const Key k = static_cast<Key>(rng.Uniform(30));
      const bool exists =
          pending.count(k) ? !pending[k].first : model.count(k) != 0;
      if (!exists) {
        ok = store_.Insert(txn.get(), MakeRow(k, step)).ok();
        if (ok) pending[k] = {false, step};
      } else if (rng.Bernoulli(0.3)) {
        ok = store_.Delete(txn.get(), k).ok();
        if (ok) pending[k] = {true, 0};
      } else {
        ok = store_.Update(txn.get(), MakeRow(k, step)).ok();
        if (ok) pending[k] = {false, step};
      }
    }
    if (ok && rng.Bernoulli(0.8)) {
      ASSERT_TRUE(mgr_.Commit(txn.get()).ok());
      for (const auto& [k, change] : pending) {
        if (change.first)
          model.erase(k);
        else
          model[k] = change.second;
      }
    } else if (txn->active()) {
      mgr_.Abort(txn.get());
    }
    if (step % 50 == 0) checkpoints.emplace_back(mgr_.CurrentSnapshot(), model);
  }

  // Every historical snapshot still reads its exact historical state.
  for (const auto& [snap, expected] : checkpoints) {
    std::map<Key, int64_t> got;
    store_.Scan(snap, [&](Key k, const Row& r) {
      got[k] = r.Get(1).AsInt64();
      return true;
    });
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace htap
