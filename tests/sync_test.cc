// Data-synchronization tests: the three DS strategies converge the column
// store to the row-store state; the delta/column-union invariant holds
// under randomized interleavings of commits, merges, and scans; the
// freshness tracker reports lag correctly.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "exec/executor.h"
#include "sync/sync.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

Row MakeRow(Key id, int64_t v) { return Row{Value(id), Value(v)}; }

/// Reads the column store + delta union into a map.
std::map<Key, int64_t> HtapState(const ColumnTable& table,
                                 const DeltaReader* delta, CSN snap) {
  std::map<Key, int64_t> out;
  for (const Row& r : ScanHtap(table, delta, snap, Predicate::True(), {}))
    out[r.Get(0).AsInt64()] = r.Get(1).AsInt64();
  return out;
}

std::map<Key, int64_t> RowState(const MvccRowStore& store, const Snapshot& s) {
  std::map<Key, int64_t> out;
  store.Scan(s, [&](Key k, const Row& r) {
    out[k] = r.Get(1).AsInt64();
    return true;
  });
  return out;
}

TEST(SyncTest, InMemoryMergeConvergesColumnStore) {
  TransactionManager mgr;
  MvccRowStore rows(1, TestSchema(), &mgr, nullptr);
  auto delta = std::make_unique<InMemoryDeltaStore>();
  InMemoryDeltaStore* delta_ptr = delta.get();
  ColumnTable table(TestSchema());
  DataSynchronizer sync(
      SyncStrategy::kInMemoryMerge, &table,
      std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(delta.get()));

  struct Router : ChangeSink {
    InMemoryDeltaStore* d;
    void OnCommit(const std::vector<ChangeEvent>& evs) override {
      d->AppendBatch(evs, 1);
    }
  } router;
  router.d = delta_ptr;
  mgr.RegisterSink(&router);

  for (int i = 0; i < 100; ++i) {
    auto t = mgr.Begin();
    ASSERT_TRUE(rows.Insert(t.get(), MakeRow(i, i * 2)).ok());
    ASSERT_TRUE(mgr.Commit(t.get()).ok());
  }
  EXPECT_EQ(delta_ptr->EntryCount(), 100u);
  ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());
  EXPECT_EQ(delta_ptr->EntryCount(), 0u);
  EXPECT_EQ(table.live_rows(), 100u);
  EXPECT_EQ(table.merged_csn(), mgr.LastCommittedCsn());
  EXPECT_EQ(sync.stats().merges, 1u);
  EXPECT_EQ(sync.stats().entries_merged, 100u);

  EXPECT_EQ(HtapState(table, delta_ptr, kMaxCSN - 1),
            RowState(rows, mgr.CurrentSnapshot()));
}

TEST(SyncTest, LogMergeConvergesColumnStore) {
  LogDeltaStore delta;
  ColumnTable table(TestSchema());
  DataSynchronizer sync(
      SyncStrategy::kLogMerge, &table,
      std::make_unique<DeltaSourceAdapter<LogDeltaStore>>(&delta));

  std::vector<DeltaEntry> file;
  for (CSN c = 1; c <= 50; ++c) {
    DeltaEntry e;
    e.op = ChangeOp::kInsert;
    e.key = static_cast<Key>(c);
    e.row = MakeRow(e.key, static_cast<int64_t>(c));
    e.csn = c;
    file.push_back(e);
  }
  delta.AppendFile(file);
  ASSERT_TRUE(sync.SyncTo(50).ok());
  EXPECT_EQ(table.live_rows(), 50u);
  EXPECT_EQ(delta.num_files(), 0u);
}

TEST(SyncTest, RebuildFromPrimaryMatchesRowStore) {
  TransactionManager mgr;
  MvccRowStore rows(1, TestSchema(), &mgr, nullptr);
  ColumnTable table(TestSchema());
  DataSynchronizer sync(&table, &rows);
  EXPECT_EQ(sync.strategy(), SyncStrategy::kRebuild);

  for (int i = 0; i < 60; ++i) {
    auto t = mgr.Begin();
    rows.Insert(t.get(), MakeRow(i, i));
    mgr.Commit(t.get());
  }
  ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());
  EXPECT_EQ(table.live_rows(), 60u);
  EXPECT_EQ(sync.stats().rows_loaded, 60u);

  // Mutate, rebuild again: the column store reflects the new state fully.
  auto t = mgr.Begin();
  rows.Delete(t.get(), 0);
  rows.Update(t.get(), MakeRow(1, 999));
  mgr.Commit(t.get());
  ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());
  EXPECT_EQ(HtapState(table, nullptr, kMaxCSN - 1),
            RowState(rows, mgr.CurrentSnapshot()));
}

TEST(SyncTest, ApplyEntriesFoldsBatch) {
  ColumnTable table(TestSchema());
  std::vector<DeltaEntry> entries;
  auto add = [&](ChangeOp op, Key k, int64_t v, CSN c) {
    DeltaEntry e;
    e.op = op;
    e.key = k;
    e.csn = c;
    if (op != ChangeOp::kDelete) e.row = MakeRow(k, v);
    entries.push_back(e);
  };
  add(ChangeOp::kInsert, 1, 1, 1);
  add(ChangeOp::kUpdate, 1, 2, 2);   // folded over the insert
  add(ChangeOp::kInsert, 2, 5, 3);
  add(ChangeOp::kDelete, 2, 0, 4);   // cancels the insert
  add(ChangeOp::kInsert, 3, 7, 5);
  ApplyEntriesToColumnTable(&table, entries, 5);
  EXPECT_EQ(table.live_rows(), 2u);
  size_t gi, off;
  ASSERT_TRUE(table.FindKey(1, &gi, &off));
  EXPECT_EQ(table.MaterializeRow(*table.group(gi), off).Get(1).AsInt64(), 2);
  EXPECT_FALSE(table.FindKey(2, &gi, &off));
}

TEST(SyncTest, SyncToIsIdempotent) {
  ColumnTable table(TestSchema());
  InMemoryDeltaStore delta;
  DataSynchronizer sync(
      SyncStrategy::kInMemoryMerge, &table,
      std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(&delta));
  DeltaEntry e;
  e.op = ChangeOp::kInsert;
  e.key = 1;
  e.row = MakeRow(1, 1);
  e.csn = 1;
  delta.Append(e);
  ASSERT_TRUE(sync.SyncTo(1).ok());
  ASSERT_TRUE(sync.SyncTo(1).ok());  // no-op: target already reached
  EXPECT_EQ(sync.stats().merges, 1u);
}

// The central HTAP invariant: at every point in a random interleaving of
// committed writes and merges, scan(main) ⊎ delta == row-store state.
TEST(SyncTest, PropertyDeltaColumnUnionEqualsRowStore) {
  TransactionManager mgr;
  MvccRowStore rows(1, TestSchema(), &mgr, nullptr);
  InMemoryDeltaStore delta;
  ColumnTable table(TestSchema());
  DataSynchronizer sync(
      SyncStrategy::kInMemoryMerge, &table,
      std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(&delta));

  struct Router : ChangeSink {
    InMemoryDeltaStore* d;
    void OnCommit(const std::vector<ChangeEvent>& evs) override {
      d->AppendBatch(evs, 1);
    }
  } router;
  router.d = &delta;
  mgr.RegisterSink(&router);

  Random rng(2024);
  std::map<Key, int64_t> live;
  for (int step = 0; step < 800; ++step) {
    auto t = mgr.Begin();
    const Key k = static_cast<Key>(rng.Uniform(40));
    Status st;
    if (live.count(k) == 0) {
      st = rows.Insert(t.get(), MakeRow(k, step));
      if (st.ok()) live[k] = step;
    } else if (rng.Bernoulli(0.25)) {
      st = rows.Delete(t.get(), k);
      if (st.ok()) live.erase(k);
    } else {
      st = rows.Update(t.get(), MakeRow(k, step));
      if (st.ok()) live[k] = step;
    }
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(mgr.Commit(t.get()).ok());

    if (rng.Bernoulli(0.1))
      ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());

    if (step % 37 == 0) {
      ASSERT_EQ(HtapState(table, &delta, mgr.LastCommittedCsn()), live)
          << "divergence at step " << step;
    }
  }
  // Final full merge: pure column scan (no delta) must also agree.
  ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());
  EXPECT_EQ(HtapState(table, nullptr, mgr.LastCommittedCsn()), live);
}

TEST(FreshnessTrackerTest, LagReflectsUnmergedCommits) {
  VirtualClock clock;
  FreshnessTracker tracker(&clock);
  std::vector<ChangeEvent> evs(1);
  evs[0].csn = 10;
  clock.AdvanceTo(1000);
  tracker.OnCommit(evs);
  clock.AdvanceTo(5000);

  EXPECT_EQ(tracker.TimeLagMicros(/*visible=*/9), 4000);
  EXPECT_EQ(tracker.TimeLagMicros(/*visible=*/10), 0);
  EXPECT_EQ(tracker.CsnLag(10, 4), 6u);
  EXPECT_EQ(tracker.CsnLag(10, 10), 0u);
}

}  // namespace
}  // namespace htap
