// WAL tests: record codec, framing, torn-tail and corruption tolerance,
// group commit, file round trips, and recovery replay.

#include <gtest/gtest.h>

#include <cstdio>

#include "wal/recovery.h"
#include "wal/wal.h"

namespace htap {
namespace {

WalRecord MakeDml(WalRecordType type, uint64_t txn, uint32_t table, Key key) {
  WalRecord r;
  r.type = type;
  r.txn_id = txn;
  r.table_id = table;
  r.key = key;
  r.row = Row{Value(key), Value("payload"), Value(1.5)};
  return r;
}

TEST(WalRecordTest, CodecRoundTrip) {
  WalRecord r = MakeDml(WalRecordType::kUpdate, 42, 7, 123);
  r.csn = 99;
  std::string buf;
  r.EncodeTo(&buf);
  size_t pos = 0;
  WalRecord got;
  ASSERT_TRUE(WalRecord::DecodeFrom(buf, &pos, &got));
  EXPECT_EQ(got.type, WalRecordType::kUpdate);
  EXPECT_EQ(got.txn_id, 42u);
  EXPECT_EQ(got.table_id, 7u);
  EXPECT_EQ(got.key, 123);
  EXPECT_EQ(got.csn, 99u);
  EXPECT_EQ(got.row, r.row);
}

TEST(WalWriterTest, AppendAndParse) {
  WalWriter w({});
  for (int i = 0; i < 10; ++i)
    w.Append(MakeDml(WalRecordType::kInsert, 1, 2, i));
  ASSERT_TRUE(w.Sync().ok());
  const auto records = WalReader::Parse(w.ContentsForTest());
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[3].key, 3);
}

TEST(WalWriterTest, LsnsAreMonotonic) {
  WalWriter w({});
  uint64_t prev = 0;
  for (int i = 0; i < 5; ++i) {
    const uint64_t lsn = w.Append(MakeDml(WalRecordType::kInsert, 1, 1, i));
    if (i > 0) EXPECT_GT(lsn, prev);
    prev = lsn;
  }
  EXPECT_EQ(w.TailLsn(), prev + (w.TailLsn() - prev));
}

TEST(WalWriterTest, GroupCommitBatchesFlushes) {
  WalWriter w({});
  for (int i = 0; i < 100; ++i)
    w.Append(MakeDml(WalRecordType::kInsert, 1, 1, i));
  ASSERT_TRUE(w.Sync().ok());  // one flush for the whole group
  EXPECT_EQ(w.sync_count(), 1u);
  ASSERT_TRUE(w.Sync().ok());  // nothing buffered: no-op
  EXPECT_EQ(w.sync_count(), 1u);
}

TEST(WalReaderTest, ToleratesTornTail) {
  WalWriter w({});
  w.Append(MakeDml(WalRecordType::kInsert, 1, 1, 1));
  w.Append(MakeDml(WalRecordType::kInsert, 1, 1, 2));
  w.Sync();
  std::string contents = w.ContentsForTest();
  contents.resize(contents.size() - 5);  // torn final record
  const auto records = WalReader::Parse(contents);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, 1);
}

TEST(WalReaderTest, StopsAtChecksumCorruption) {
  WalWriter w({});
  w.Append(MakeDml(WalRecordType::kInsert, 1, 1, 1));
  w.Append(MakeDml(WalRecordType::kInsert, 1, 1, 2));
  w.Sync();
  std::string contents = w.ContentsForTest();
  contents[12] ^= 0x5a;  // flip a byte inside the first record payload
  const auto records = WalReader::Parse(contents);
  EXPECT_EQ(records.size(), 0u);
}

TEST(WalWriterTest, FileBackendRoundTrip) {
  const std::string path = "/tmp/htap_wal_test.wal";
  std::remove(path.c_str());
  {
    WalWriter::Options o;
    o.path = path;
    WalWriter w(o);
    for (int i = 0; i < 20; ++i)
      w.Append(MakeDml(WalRecordType::kInsert, 5, 3, i * 10));
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn_id = 5;
    w.Append(commit);
    ASSERT_TRUE(w.Sync().ok());
  }
  auto res = WalReader::ReadFile(path);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 21u);
  EXPECT_EQ((*res)[20].type, WalRecordType::kCommit);
  std::remove(path.c_str());
}

TEST(RecoveryTest, ReplaysOnlyCommittedInCommitOrder) {
  WalWriter w({});
  // Txn 1 commits, txn 2 aborts, txn 3 never finishes, txn 4 commits after 1.
  w.Append(MakeDml(WalRecordType::kInsert, 1, 1, 100));
  w.Append(MakeDml(WalRecordType::kInsert, 2, 1, 200));
  w.Append(MakeDml(WalRecordType::kInsert, 3, 1, 300));
  WalRecord c1;
  c1.type = WalRecordType::kCommit;
  c1.txn_id = 1;
  w.Append(c1);
  WalRecord a2;
  a2.type = WalRecordType::kAbort;
  a2.txn_id = 2;
  w.Append(a2);
  w.Append(MakeDml(WalRecordType::kUpdate, 4, 1, 100));
  WalRecord c4;
  c4.type = WalRecordType::kCommit;
  c4.txn_id = 4;
  w.Append(c4);
  w.Sync();

  std::vector<std::pair<Key, CSN>> applied;
  const auto records = WalReader::Parse(w.ContentsForTest());
  const RecoveryStats stats = ReplayWal(records, [&](const WalRecord& r,
                                                     CSN csn) {
    applied.emplace_back(r.key, csn);
  });
  EXPECT_EQ(stats.txns_committed, 2u);
  EXPECT_EQ(stats.txns_discarded, 2u);
  EXPECT_EQ(stats.changes_applied, 2u);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].first, 100);  // txn 1 first
  EXPECT_EQ(applied[1].first, 100);  // then txn 4's update
  EXPECT_LT(applied[0].second, applied[1].second);
}

TEST(RecoveryTest, EmptyLog) {
  const RecoveryStats stats =
      ReplayWal({}, [](const WalRecord&, CSN) { FAIL(); });
  EXPECT_EQ(stats.changes_applied, 0u);
}

}  // namespace
}  // namespace htap
