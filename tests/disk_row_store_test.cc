// Disk row store tests: heap round trips, upsert/tombstone semantics,
// persistence across reopen, buffer-pool hit/miss/eviction accounting.

#include <gtest/gtest.h>

#include <cstdio>

#include "storage/disk_row_store.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"s", Type::kString}});
}

Row MakeRow(Key id, int64_t v, const std::string& s = "abc") {
  return Row{Value(id), Value(v), Value(s)};
}

class DiskRowStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/htap_heap_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".heap";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DiskRowStoreTest, PutGetDelete) {
  DiskRowStore store(path_, TestSchema(), 16);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put(MakeRow(1, 10)).ok());
  Row out;
  ASSERT_TRUE(store.Get(1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 10);
  ASSERT_TRUE(store.Delete(1).ok());
  EXPECT_TRUE(store.Get(1, &out).IsNotFound());
  EXPECT_TRUE(store.Delete(1).IsNotFound());
}

TEST_F(DiskRowStoreTest, UpsertKeepsNewestVersion) {
  DiskRowStore store(path_, TestSchema(), 16);
  ASSERT_TRUE(store.Open().ok());
  store.Put(MakeRow(1, 1));
  store.Put(MakeRow(1, 2));
  store.Put(MakeRow(1, 3));
  Row out;
  ASSERT_TRUE(store.Get(1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 3);
  EXPECT_EQ(store.live_keys(), 1u);
}

TEST_F(DiskRowStoreTest, ScanVisitsLiveKeysOnly) {
  DiskRowStore store(path_, TestSchema(), 16);
  ASSERT_TRUE(store.Open().ok());
  for (Key k = 0; k < 50; ++k) store.Put(MakeRow(k, k));
  for (Key k = 0; k < 50; k += 2) store.Delete(k);
  size_t count = 0;
  int64_t sum = 0;
  ASSERT_TRUE(store.Scan([&](Key, const Row& r) {
                     ++count;
                     sum += r.Get(1).AsInt64();
                     return true;
                   })
                  .ok());
  EXPECT_EQ(count, 25u);
  EXPECT_EQ(sum, 1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19 + 21 + 23 + 25 +
                     27 + 29 + 31 + 33 + 35 + 37 + 39 + 41 + 43 + 45 + 47 +
                     49);
}

TEST_F(DiskRowStoreTest, PersistsAcrossReopen) {
  {
    DiskRowStore store(path_, TestSchema(), 16);
    ASSERT_TRUE(store.Open().ok());
    for (Key k = 0; k < 300; ++k)
      store.Put(MakeRow(k, k * 2, std::string(50, 'p')));
    store.Delete(7);
    store.Put(MakeRow(8, 999));
    ASSERT_TRUE(store.Flush().ok());
  }
  DiskRowStore reopened(path_, TestSchema(), 16);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_keys(), 299u);
  Row out;
  ASSERT_TRUE(reopened.Get(8, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 999);
  EXPECT_TRUE(reopened.Get(7, &out).IsNotFound());
  ASSERT_TRUE(reopened.Get(250, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 500);
}

TEST_F(DiskRowStoreTest, SpillsAcrossManyPages) {
  DiskRowStore store(path_, TestSchema(), 4);
  ASSERT_TRUE(store.Open().ok());
  // Wide rows: ~900 bytes each, so 8 or 9 per page -> hundreds of pages.
  for (Key k = 0; k < 2000; ++k)
    ASSERT_TRUE(store.Put(MakeRow(k, k, std::string(850, 'x'))).ok());
  EXPECT_GT(store.num_pages(), 100u);
  Row out;
  ASSERT_TRUE(store.Get(0, &out).ok());
  ASSERT_TRUE(store.Get(1999, &out).ok());
}

TEST_F(DiskRowStoreTest, BufferPoolEvictsUnderPressure) {
  DiskRowStore store(path_, TestSchema(), 4);  // tiny pool
  ASSERT_TRUE(store.Open().ok());
  for (Key k = 0; k < 1000; ++k)
    store.Put(MakeRow(k, k, std::string(800, 'y')));
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GT(store.pool_stats().evictions, 0u);
  EXPECT_LE(store.pool_stats().cached_pages, 4u);

  // A cold sweep misses; a re-read of one hot key hits.
  const uint64_t misses_before = store.pool_stats().misses;
  Row out;
  store.Get(0, &out);
  EXPECT_GT(store.pool_stats().misses, misses_before);
  const uint64_t hits_before = store.pool_stats().hits;
  store.Get(0, &out);
  EXPECT_GT(store.pool_stats().hits, hits_before);
}

TEST_F(DiskRowStoreTest, RejectsOversizedRow) {
  DiskRowStore store(path_, TestSchema(), 4);
  ASSERT_TRUE(store.Open().ok());
  EXPECT_TRUE(store.Put(MakeRow(1, 1, std::string(kDiskPageSize, 'z')))
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace htap
