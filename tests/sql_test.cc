// SQL front-end tests: lexing/parsing of every statement kind, error
// handling, and binder behaviors not covered by the cross-architecture
// end-to-end test.

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/sql.h"

namespace htap {
namespace {

using sql::Parse;
using sql::Statement;

TEST(SqlParserTest, SelectStarWithWhere) {
  auto res = Parse("SELECT * FROM t WHERE a > 5 AND b = 'x'");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const auto& s = res->select;
  EXPECT_EQ(s.table, "t");
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].kind, sql::SelectItem::Kind::kStar);
  ASSERT_TRUE(s.where.has_value());
  EXPECT_EQ(s.where->kind, sql::Expr::Kind::kAnd);
}

TEST(SqlParserTest, AggregatesWithAliasesAndGroupBy) {
  auto res = Parse(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(qty), "
      "MIN(qty), MAX(qty) FROM orders GROUP BY region ORDER BY total DESC "
      "LIMIT 5;");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const auto& s = res->select;
  EXPECT_EQ(s.items.size(), 6u);
  EXPECT_EQ(s.items[1].func, "COUNT");
  EXPECT_EQ(s.items[1].alias, "n");
  EXPECT_EQ(s.items[2].column, "amount");
  EXPECT_EQ(s.group_by, (std::vector<std::string>{"region"}));
  EXPECT_EQ(s.order_by, "total");
  EXPECT_TRUE(s.order_desc);
  EXPECT_EQ(s.limit, 5u);
}

TEST(SqlParserTest, JoinClause) {
  auto res = Parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z < 3");
  ASSERT_TRUE(res.ok());
  const auto& s = res->select;
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table, "b");
  EXPECT_EQ(s.joins[0].left_col, "a.x");
  EXPECT_EQ(s.joins[0].right_col, "b.y");
}

TEST(SqlParserTest, ChainedJoinClauses) {
  auto res = Parse(
      "SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w "
      "JOIN d ON c.u = d.v WHERE a.z < 3");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const auto& s = res->select;
  ASSERT_EQ(s.joins.size(), 3u);
  EXPECT_EQ(s.joins[0].table, "b");
  EXPECT_EQ(s.joins[1].table, "c");
  EXPECT_EQ(s.joins[1].left_col, "b.z");
  EXPECT_EQ(s.joins[1].right_col, "c.w");
  EXPECT_EQ(s.joins[2].table, "d");
  EXPECT_EQ(s.joins[2].right_col, "d.v");
}

TEST(SqlParserTest, JoinParseErrors) {
  // Dangling or incomplete join clauses fail with a pointed message.
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON x =").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a INNER b ON x = y").ok());

  auto st = Parse("SELECT * FROM a JOIN b WHERE x = 1").status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.ToString().find("expected ON"), std::string::npos)
      << st.ToString();

  auto st2 = Parse("SELECT * FROM a JOIN b ON x < y").status();
  EXPECT_TRUE(st2.IsInvalidArgument());
  EXPECT_NE(st2.ToString().find("expected '='"), std::string::npos)
      << st2.ToString();
}

TEST(SqlParserTest, BetweenNotParensPrecedence) {
  auto res = Parse(
      "SELECT * FROM t WHERE (a BETWEEN 1 AND 10 OR NOT b = 2) AND c != 3");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const auto& w = *res->select.where;
  EXPECT_EQ(w.kind, sql::Expr::Kind::kAnd);
  EXPECT_EQ(w.children[0].kind, sql::Expr::Kind::kOr);
  EXPECT_EQ(w.children[0].children[0].kind, sql::Expr::Kind::kBetween);
  EXPECT_EQ(w.children[0].children[1].kind, sql::Expr::Kind::kNot);
}

TEST(SqlParserTest, CreateTableTypesAndPrimaryKey) {
  auto res = Parse(
      "CREATE TABLE t (a INT64, b BIGINT PRIMARY KEY, c DOUBLE, d VARCHAR)");
  ASSERT_TRUE(res.ok());
  const auto& c = res->create;
  EXPECT_EQ(c.table, "t");
  ASSERT_EQ(c.columns.size(), 4u);
  EXPECT_EQ(c.columns[0].type, Type::kInt64);
  EXPECT_EQ(c.columns[2].type, Type::kDouble);
  EXPECT_EQ(c.columns[3].type, Type::kString);
  EXPECT_EQ(c.pk_index, 1);
}

TEST(SqlParserTest, InsertMultipleRowsAndLiterals) {
  auto res = Parse("INSERT INTO t VALUES (1, -2.5, 'str', NULL), (2, 0.0, "
                   "'', 7)");
  ASSERT_TRUE(res.ok());
  const auto& i = res->insert;
  ASSERT_EQ(i.rows.size(), 2u);
  EXPECT_EQ(i.rows[0][0].AsInt64(), 1);
  EXPECT_DOUBLE_EQ(i.rows[0][1].AsDouble(), -2.5);
  EXPECT_EQ(i.rows[0][2].AsString(), "str");
  EXPECT_TRUE(i.rows[0][3].is_null());
}

TEST(SqlParserTest, UpdateAndDelete) {
  auto res = Parse("UPDATE t SET a = 5, b = 'x' WHERE id >= 10");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->update.assignments.size(), 2u);
  ASSERT_TRUE(res->update.where.has_value());

  auto res2 = Parse("DELETE FROM t");
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->del.table, "t");
  EXPECT_FALSE(res2->del.where.has_value());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(Parse("select * from t where a = 1 order by a limit 1").ok());
  EXPECT_TRUE(Parse("Select A From T Group By A").status().IsNotSupported() ||
              true);  // parse-level OK; binder may reject later
}

TEST(SqlParserTest, ParseErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FORM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parse("UPDATE t SET").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a ~ 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t; SELECT * FROM u").ok());
  EXPECT_FALSE(Parse("DROP TABLE t").ok());
}

class SqlBinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.background_sync = false;
    db_ = std::move(*Database::Open(opts));
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE item (i_id INT64 PRIMARY KEY, "
                                "name STRING, price DOUBLE)")
                    .ok());
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE sale (s_id INT64 PRIMARY KEY, "
                                "item_id INT64, qty INT64)")
                    .ok());
    ASSERT_TRUE(db_->ExecuteSql("INSERT INTO item VALUES (1, 'apple', 2.0), "
                                "(2, 'pear', 3.0)")
                    .ok());
    ASSERT_TRUE(db_->ExecuteSql("INSERT INTO sale VALUES (10, 1, 4), "
                                "(11, 1, 1), (12, 2, 2)")
                    .ok());
    // `qty` deliberately collides with sale.qty to exercise ambiguity
    // detection in chained joins.
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE promo (p_id INT64 PRIMARY KEY, "
                                "p_item INT64, qty INT64)")
                    .ok());
    ASSERT_TRUE(db_->ExecuteSql("INSERT INTO promo VALUES (100, 1, 9), "
                                "(101, 2, 0)")
                    .ok());
    ASSERT_TRUE(db_->ForceSyncAll().ok());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(SqlBinderTest, QualifiedColumnsResolveThroughJoin) {
  auto res = db_->ExecuteSql(
      "SELECT item.name, SUM(sale.qty) AS sold FROM sale JOIN item ON "
      "sale.item_id = item.i_id GROUP BY item.name ORDER BY sold DESC");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0].Get(0).AsString(), "apple");
  EXPECT_DOUBLE_EQ(res->rows[0].Get(1).AsDouble(), 5.0);
}

TEST_F(SqlBinderTest, WhereSplitsAcrossJoinSides) {
  auto res = db_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM sale JOIN item ON sale.item_id = item.i_id "
      "WHERE sale.qty > 1 AND item.price < 2.5");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 1);  // only sale 10
}

TEST_F(SqlBinderTest, UnknownColumnAndTableErrors) {
  EXPECT_TRUE(db_->ExecuteSql("SELECT nope FROM item").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->ExecuteSql("SELECT * FROM missing").status().IsNotFound());
  EXPECT_TRUE(db_->ExecuteSql("INSERT INTO item VALUES (9)").status()
                  .IsInvalidArgument());
}

TEST_F(SqlBinderTest, SelectListReorderedAroundGroupBy) {
  // Aggregates may precede group columns: output follows the select list.
  auto res = db_->ExecuteSql(
      "SELECT COUNT(*) AS n, name FROM item GROUP BY name ORDER BY name");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->schema.column(0).name, "n");
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 1);
  EXPECT_EQ(res->rows[0].Get(1).AsString(), "apple");
  // Select items not in GROUP BY are still rejected.
  EXPECT_TRUE(db_->ExecuteSql("SELECT price, COUNT(*) FROM item GROUP BY name")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlBinderTest, OrderByUnknownOutputColumnFails) {
  EXPECT_FALSE(db_->ExecuteSql(
                      "SELECT name FROM item ORDER BY price")  // not projected
                   .ok());
}

TEST_F(SqlBinderTest, ProjectionOrderPreserved) {
  auto res = db_->ExecuteSql(
      "SELECT price, i_id FROM item WHERE i_id = 2");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(res->rows[0].Get(0).AsDouble(), 3.0);
  EXPECT_EQ(res->rows[0].Get(1).AsInt64(), 2);
  EXPECT_EQ(res->schema.column(0).name, "price");
}

TEST_F(SqlBinderTest, ThreeTableChainBindsAndExecutes) {
  // Each sale matches exactly one item and each item one promo, so the
  // chain preserves per-sale rows; the second ON reuses item.i_id from the
  // combined layout.
  auto res = db_->ExecuteSql(
      "SELECT item.name, SUM(sale.qty) AS sold FROM sale "
      "JOIN item ON sale.item_id = item.i_id "
      "JOIN promo ON item.i_id = promo.p_item "
      "GROUP BY item.name ORDER BY sold DESC");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0].Get(0).AsString(), "apple");
  EXPECT_DOUBLE_EQ(res->rows[0].Get(1).AsDouble(), 5.0);
  EXPECT_EQ(res->rows[1].Get(0).AsString(), "pear");
  EXPECT_DOUBLE_EQ(res->rows[1].Get(1).AsDouble(), 2.0);
}

TEST_F(SqlBinderTest, ChainReportsExecInfo) {
  QueryExecInfo info;
  auto res = db_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM sale "
      "INNER JOIN item ON sale.item_id = item.i_id "
      "INNER JOIN promo ON item.i_id = promo.p_item "
      "WHERE promo.qty > 0",
      &info);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 2);  // apple sales only
  ASSERT_EQ(info.join_steps.size(), 2u);
  ASSERT_EQ(info.join_order.size(), 2u);
  EXPECT_EQ(info.join_actual_rows.size(), 2u);
}

TEST_F(SqlBinderTest, AmbiguousColumnErrors) {
  // `qty` exists in both sale and promo once the chain includes promo.
  auto st = db_->ExecuteSql(
                   "SELECT COUNT(*) AS n FROM sale "
                   "JOIN item ON item_id = i_id "
                   "JOIN promo ON i_id = p_item WHERE qty > 1")
                .status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.ToString().find("ambiguous column"), std::string::npos)
      << st.ToString();

  // Ambiguity inside an ON condition is also rejected: after joining
  // promo, `qty` matches both sale and promo in the combined layout.
  auto st2 = db_->ExecuteSql(
                    "SELECT COUNT(*) AS n FROM sale "
                    "JOIN promo ON item_id = p_item "
                    "JOIN item ON qty = i_id")
                 .status();
  EXPECT_TRUE(st2.IsInvalidArgument()) << st2.ToString();
  EXPECT_NE(st2.ToString().find("ambiguous"), std::string::npos)
      << st2.ToString();

  // Qualification resolves the ambiguity.
  auto ok = db_->ExecuteSql(
      "SELECT COUNT(*) AS n FROM sale "
      "JOIN item ON item_id = i_id "
      "JOIN promo ON i_id = p_item WHERE sale.qty > 1");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows[0].Get(0).AsInt64(), 2);  // sales 10 and 12
}

TEST_F(SqlBinderTest, ChainedJoinToUnknownTableIsNotFound) {
  EXPECT_TRUE(db_->ExecuteSql(
                     "SELECT COUNT(*) AS n FROM sale "
                     "JOIN item ON item_id = i_id "
                     "JOIN missing ON i_id = x")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlBinderTest, DeleteAllThenCountIsZero) {
  ASSERT_TRUE(db_->ExecuteSql("DELETE FROM sale").ok());
  auto res = db_->ExecuteSql("SELECT COUNT(*) AS n FROM sale");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 0);
}

}  // namespace
}  // namespace htap
