// Cross-architecture facade tests: the same API contract holds on all four
// presets (parameterized), plus architecture-specific behaviors.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/database.h"

namespace htap {
namespace {

Schema OrdersSchema() {
  return Schema({{"id", Type::kInt64}, {"qty", Type::kInt64},
                 {"region", Type::kString}, {"amount", Type::kDouble}});
}

Row Order(Key id, int64_t qty, const std::string& region, double amount) {
  return Row{Value(id), Value(qty), Value(region), Value(amount)};
}

class DatabaseTest : public ::testing::TestWithParam<ArchitectureKind> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/htap_dbtest_XXXXXX";
    dir_ = mkdtemp(tmpl);
    DatabaseOptions opts;
    opts.architecture = GetParam();
    opts.data_dir = dir_;
    opts.background_sync = false;  // tests drive syncs explicitly
    opts.dist.num_shards = 2;
    opts.dist.learner_merge_interval = 0;
    auto res = Database::Open(opts);
    ASSERT_TRUE(res.ok());
    db_ = std::move(*res);
    ASSERT_TRUE(db_->CreateTable("orders", OrdersSchema()).ok());
  }

  void TearDown() override {
    db_.reset();
    std::system(("rm -rf " + dir_).c_str());
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseTest, InsertAndPointRead) {
  ASSERT_TRUE(db_->InsertRow("orders", Order(1, 5, "west", 9.5)).ok());
  Row out;
  ASSERT_TRUE(db_->GetRow("orders", 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 5);
  EXPECT_TRUE(db_->GetRow("orders", 42, &out).IsNotFound());
}

TEST_P(DatabaseTest, TransactionCommitGroupsWrites) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn->Insert("orders", Order(1, 1, "a", 1.0)).ok());
  ASSERT_TRUE(txn->Insert("orders", Order(2, 2, "b", 2.0)).ok());
  ASSERT_TRUE(txn->Commit().ok());
  Row out;
  EXPECT_TRUE(db_->GetRow("orders", 1, &out).ok());
  EXPECT_TRUE(db_->GetRow("orders", 2, &out).ok());
}

TEST_P(DatabaseTest, AbortDiscardsWrites) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn->Insert("orders", Order(7, 1, "a", 1.0)).ok());
  ASSERT_TRUE(txn->Abort().ok());
  Row out;
  EXPECT_TRUE(db_->GetRow("orders", 7, &out).IsNotFound());
}

TEST_P(DatabaseTest, DestructorAbortsOpenTransaction) {
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn->Insert("orders", Order(8, 1, "a", 1.0)).ok());
    // no Commit
  }
  Row out;
  EXPECT_TRUE(db_->GetRow("orders", 8, &out).IsNotFound());
}

TEST_P(DatabaseTest, ReadYourOwnWrites) {
  ASSERT_TRUE(db_->InsertRow("orders", Order(1, 1, "a", 1.0)).ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn->Insert("orders", Order(2, 2, "b", 2.0)).ok());
  Row out;
  ASSERT_TRUE(txn->Get("orders", 2, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 2);
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_P(DatabaseTest, UpdateAndDelete) {
  ASSERT_TRUE(db_->InsertRow("orders", Order(1, 1, "a", 1.0)).ok());
  ASSERT_TRUE(db_->UpdateRow("orders", Order(1, 9, "a", 1.0)).ok());
  Row out;
  ASSERT_TRUE(db_->GetRow("orders", 1, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 9);
  ASSERT_TRUE(db_->DeleteRow("orders", 1).ok());
  EXPECT_TRUE(db_->GetRow("orders", 1, &out).IsNotFound());
}

TEST_P(DatabaseTest, AnalyticalQuerySeesCommittedData) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db_->InsertRow("orders", Order(i, i % 4,
                                               i % 2 ? "west" : "east",
                                               i * 1.0))
                    .ok());
  }
  ASSERT_TRUE(db_->ForceSync("orders").ok());
  QueryPlan plan;
  plan.table = "orders";
  plan.where = Predicate::Eq(2, Value("west"));
  plan.aggs = {AggSpec::Count("n"), AggSpec::Sum(3, "total")};
  auto res = db_->Query(plan);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 20);
  double expected = 0;
  for (int i = 1; i < 40; i += 2) expected += i;
  EXPECT_DOUBLE_EQ(res->rows[0].Get(1).AsDouble(), expected);
}

TEST_P(DatabaseTest, FreshQueriesSeeUnmergedWrites) {
  // Without any ForceSync, require_fresh=true must still see everything
  // (delta union / log union), on every architecture.
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(db_->InsertRow("orders", Order(i, 1, "x", 1.0)).ok());
  if (GetParam() == ArchitectureKind::kDistributedRowPlusColumnReplica) {
    // Replication is asynchronous: give the learner its log.
    ASSERT_TRUE(db_->ForceSync("orders").ok());
  }
  QueryPlan plan;
  plan.table = "orders";
  plan.aggs = {AggSpec::Count("n")};
  plan.require_fresh = true;
  auto res = db_->Query(plan);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 10);
}

TEST_P(DatabaseTest, FreshnessImprovesWithSync) {
  for (int i = 0; i < 25; ++i)
    ASSERT_TRUE(db_->InsertRow("orders", Order(i, 1, "x", 1.0)).ok());
  ASSERT_TRUE(db_->ForceSync("orders").ok());
  const FreshnessInfo after = db_->Freshness("orders");
  EXPECT_EQ(after.csn_lag, 0u) << "visible=" << after.visible_csn
                               << " committed=" << after.committed_csn;
}

TEST_P(DatabaseTest, JoinQuery) {
  ASSERT_TRUE(db_->CreateTable(
                     "region_info",
                     Schema({{"r_id", Type::kInt64},
                             {"r_name", Type::kString},
                             {"r_tax", Type::kDouble}}))
                  .ok());
  ASSERT_TRUE(db_->InsertRow("region_info",
                             Row{Value(int64_t{1}), Value("west"),
                                 Value(0.1)})
                  .ok());
  ASSERT_TRUE(db_->InsertRow("region_info",
                             Row{Value(int64_t{2}), Value("east"),
                                 Value(0.2)})
                  .ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(db_->InsertRow("orders", Order(i, i % 2 + 1, "r", 10.0)).ok());
  ASSERT_TRUE(db_->ForceSyncAll().ok());

  QueryPlan plan;
  plan.table = "orders";
  plan.has_join = true;
  plan.join_table = "region_info";
  plan.left_col = 1;   // qty joins r_id (1 or 2)
  plan.right_col = 0;
  plan.group_by = {5};  // r_name in combined layout (4 orders cols + 1)
  plan.aggs = {AggSpec::Count("n")};
  auto res = db_->Query(plan);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 2u);
}

TEST_P(DatabaseTest, SqlEndToEnd) {
  auto create = db_->ExecuteSql(
      "CREATE TABLE kv (k INT64 PRIMARY KEY, v INT64, tag STRING)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  ASSERT_TRUE(db_->ExecuteSql(
                     "INSERT INTO kv VALUES (1, 10, 'a'), (2, 20, 'b'), "
                     "(3, 30, 'a')")
                  .ok());
  ASSERT_TRUE(db_->ForceSync("kv").ok());
  auto res = db_->ExecuteSql(
      "SELECT tag, COUNT(*) AS n, SUM(v) AS total FROM kv "
      "GROUP BY tag ORDER BY tag");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0].Get(0).AsString(), "a");
  EXPECT_EQ(res->rows[0].Get(1).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(res->rows[0].Get(2).AsDouble(), 40.0);

  auto upd = db_->ExecuteSql("UPDATE kv SET v = 99 WHERE k = 2");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  Row out;
  ASSERT_TRUE(db_->GetRow("kv", 2, &out).ok());
  EXPECT_EQ(out.Get(1).AsInt64(), 99);

  ASSERT_TRUE(db_->ExecuteSql("DELETE FROM kv WHERE tag = 'a'").ok());
  EXPECT_TRUE(db_->GetRow("kv", 1, &out).IsNotFound());
  EXPECT_TRUE(db_->GetRow("kv", 2, &out).ok());
}

TEST_P(DatabaseTest, StatsReflectActivity) {
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(db_->InsertRow("orders", Order(i, 1, "x", 1.0)).ok());
  const EngineStats stats = db_->Stats();
  EXPECT_GE(stats.commits, 5u);
}

TEST_P(DatabaseTest, DuplicateTableRejected) {
  EXPECT_TRUE(db_->CreateTable("orders", OrdersSchema()).IsAlreadyExists());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, DatabaseTest,
    ::testing::Values(ArchitectureKind::kRowPlusInMemoryColumn,
                      ArchitectureKind::kDistributedRowPlusColumnReplica,
                      ArchitectureKind::kDiskRowPlusDistributedColumn,
                      ArchitectureKind::kColumnPlusDeltaRow),
    [](const ::testing::TestParamInfo<ArchitectureKind>& info) {
      switch (info.param) {
        case ArchitectureKind::kRowPlusInMemoryColumn: return "RowPlusIMC";
        case ArchitectureKind::kDistributedRowPlusColumnReplica:
          return "DistRowColReplica";
        case ArchitectureKind::kDiskRowPlusDistributedColumn:
          return "DiskRowIMCS";
        case ArchitectureKind::kColumnPlusDeltaRow: return "ColPlusDeltaRow";
      }
      return "Unknown";
    });

// ---- Architecture-specific behaviors -------------------------------------

TEST(InMemoryEngineTest, WriteWriteConflictSurfacesAsConflict) {
  DatabaseOptions opts;
  opts.background_sync = false;
  auto db = std::move(*Database::Open(opts));
  ASSERT_TRUE(db->CreateTable("orders", OrdersSchema()).ok());
  ASSERT_TRUE(db->InsertRow("orders", Order(1, 1, "a", 1.0)).ok());
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1->Update("orders", Order(1, 2, "a", 1.0)).ok());
  EXPECT_TRUE(t2->Update("orders", Order(1, 3, "a", 1.0)).IsConflict());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Abort().ok());
}

TEST(InMemoryEngineTest, HybridPathPicksIndexForPointAndColumnForScan) {
  DatabaseOptions opts;
  opts.background_sync = false;
  auto db = std::move(*Database::Open(opts));
  ASSERT_TRUE(db->CreateTable("orders", OrdersSchema()).ok());
  for (int i = 0; i < 2000; ++i)
    ASSERT_TRUE(db->InsertRow("orders", Order(i, i % 7, "r", 1.0)).ok());
  ASSERT_TRUE(db->ForceSync("orders").ok());

  QueryPlan point;
  point.table = "orders";
  point.where = Predicate::Eq(0, Value(int64_t{42}));
  QueryExecInfo info;
  ASSERT_TRUE(db->Query(point, &info).ok());
  EXPECT_EQ(info.access_path, "row-index-lookup");

  QueryPlan wide;
  wide.table = "orders";
  wide.where = Predicate::Eq(1, Value(int64_t{3}));
  wide.aggs = {AggSpec::Count("n")};
  QueryExecInfo info2;
  auto res = db->Query(wide, &info2);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(info2.access_path, "column-scan");
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 2000 / 7 + (3 < 2000 % 7 ? 1 : 0));
}

TEST(DeltaMainEngineTest, ScansGoThroughMainPlusDelta) {
  DatabaseOptions opts;
  opts.architecture = ArchitectureKind::kColumnPlusDeltaRow;
  opts.background_sync = false;
  opts.l1_spill_threshold = 4;  // force L1->L2 spills
  auto db = std::move(*Database::Open(opts));
  ASSERT_TRUE(db->CreateTable("orders", OrdersSchema()).ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(db->InsertRow("orders", Order(i, 1, "x", 1.0)).ok());
  QueryPlan plan;
  plan.table = "orders";
  plan.aggs = {AggSpec::Count("n")};
  QueryExecInfo info;
  auto res = db->Query(plan, &info);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(info.access_path, "main+l2+l1-scan");
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 10);
}

TEST(DiskEngineTest, ColumnSelectionGatesPushdown) {
  char tmpl[] = "/tmp/htap_diskeng_XXXXXX";
  std::string dir = mkdtemp(tmpl);
  DatabaseOptions opts;
  opts.architecture = ArchitectureKind::kDiskRowPlusDistributedColumn;
  opts.data_dir = dir;
  opts.background_sync = false;
  opts.column_memory_budget_bytes = 1 << 20;
  auto db = std::move(*Database::Open(opts));
  ASSERT_TRUE(db->CreateTable("orders", OrdersSchema()).ok());
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(db->InsertRow("orders", Order(i, i % 5, "r", 2.0)).ok());

  auto* engine = static_cast<DiskHtapEngine*>(db->engine());
  // Build heat on columns {0,1} only, then re-select under the budget.
  QueryPlan warm;
  warm.table = "orders";
  warm.where = Predicate::Gt(1, Value(int64_t{-1}));
  warm.projection = {0, 1};
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(db->Query(warm).ok());
  const TableInfo* info = db->catalog()->Find("orders");
  auto sel = engine->RefreshColumnSelection(*info);
  ASSERT_TRUE(sel.ok());
  const auto loaded = engine->LoadedColumns(info->id);
  EXPECT_EQ(loaded, (std::vector<int>{0, 1}));

  // A query over loaded columns pushes down; one touching cold columns
  // falls back to the disk heap.
  QueryExecInfo xi;
  ASSERT_TRUE(db->Query(warm, &xi).ok());
  EXPECT_EQ(xi.access_path, "imcs-pushdown");
  QueryPlan cold;
  cold.table = "orders";
  cold.where = Predicate::Gt(3, Value(0.0));  // amount is not loaded
  cold.aggs = {AggSpec::Count("n")};
  QueryExecInfo xi2;
  auto res = db->Query(cold, &xi2);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(xi2.access_path, "disk-heap-scan");
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 500);
  db.reset();
  std::system(("rm -rf " + dir).c_str());
}

TEST(DistEngineTest, StaleColumnScanLagsWithoutSync) {
  DatabaseOptions opts;
  opts.architecture = ArchitectureKind::kDistributedRowPlusColumnReplica;
  opts.background_sync = false;
  opts.dist.num_shards = 2;
  opts.dist.learner_merge_interval = 0;
  auto db = std::move(*Database::Open(opts));
  ASSERT_TRUE(db->CreateTable("orders", OrdersSchema()).ok());
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(db->InsertRow("orders", Order(i, 1, "x", 1.0)).ok());
  QueryPlan stale;
  stale.table = "orders";
  stale.aggs = {AggSpec::Count("n")};
  stale.require_fresh = false;  // pure column scan on unmerged learners
  auto res = db->Query(stale);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->rows[0].Get(0).AsInt64(), 8);  // lags behind commits
  ASSERT_TRUE(db->ForceSync("orders").ok());
  res = db->Query(stale);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 8);
}

}  // namespace
}  // namespace htap
