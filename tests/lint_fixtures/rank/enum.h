// Miniature LockRank enum for rank-table selftests.
#ifndef FIXTURE_RANK_ENUM_H_
#define FIXTURE_RANK_ENUM_H_

enum class LockRank : int {
  kAlpha = 100,  // alpha-stage lock
  kBeta = 200,   // beta-stage lock
};

#endif  // FIXTURE_RANK_ENUM_H_
