// good: every atomic op names its order; a non-atomic receiver with a
// method that happens to be called `store` is not an atomic op at all.
#include <atomic>

namespace fixture {

std::atomic<unsigned long> counter{0};

struct Registry {
  void store(int) {}
};

unsigned long Bump(Registry& reg) {
  reg.store(7);  // plain method call, not an atomic site
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_relaxed);
}

}  // namespace fixture
