// good: derefs happen inside a pin scope, or under an explicit contract
// marker that moves the obligation to the caller.
#include "common/ebr.h"

namespace fixture {

struct Node {
  int count = 0;
  Node* next = nullptr;
};

EpochManager g_ebr;

int ReadPinned(Node* n) {
  EpochManager::Guard g(&g_ebr);
  return n->count;  // covered by the guard above
}

// ebr: requires-pin — caller holds the guard across the traversal.
int ReadWithContract(Node* n) {
  return n->next->count;
}

// ebr: unpinned-ok — destructor-only path, no concurrent readers exist.
void TearDown(Node* n) {
  g_ebr.Retire(n, [](void* p) { delete static_cast<Node*>(p); });
}

}  // namespace fixture
