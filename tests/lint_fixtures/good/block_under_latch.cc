// good: the blocking work happens before the spin latch is taken, and the
// latch scope is confined to the short critical section.
#include <cstdio>

#include "common/latch.h"
#include "common/mutex.h"

namespace fixture {

SpinLatch g_latch{LockRank::kLeaf, "fixture"};
Mutex g_mu{LockRank::kLeaf, "fixture-mu"};

void Good() {
  fwrite("x", 1, 1, stdout);  // I/O done while holding nothing
  {
    MutexLock lk(&g_mu);      // released before the latch below
  }
  {
    SpinGuard g(g_latch);     // only register work inside the latch
  }
}

}  // namespace fixture
