// good: each non-relaxed order carries an `order:` justification, either
// trailing or in the leading comment block; relaxed needs none.
#include <atomic>

namespace fixture {

std::atomic<bool> ready{false};
std::atomic<int> hits{0};

void Publish() {
  // order: release pairs with Consume()'s acquire so the payload written
  // before the flag is visible to whoever sees the flag.
  ready.store(true, std::memory_order_release);
}

bool Consume() {
  hits.fetch_add(1, std::memory_order_relaxed);
  return ready.load(std::memory_order_acquire);  // order: pairs w/ Publish
}

}  // namespace fixture
