// good: locking goes through the ranked wrappers from common/mutex.h.
#include "common/mutex.h"

namespace fixture {

Mutex g_mu{LockRank::kLeaf, "fixture"};

int Locked() {
  MutexLock lk(&g_mu);
  return 1;
}

}  // namespace fixture
