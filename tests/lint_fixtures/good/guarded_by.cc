// good: every mutable member of a mutex-owning class is claimed, const,
// atomic, or of a type that carries its own lock.
#include <atomic>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Inner {
 public:
  void Touch();

 private:
  Mutex mu_{LockRank::kLeaf, "fixture-inner"};
  int state_ GUARDED_BY(mu_) = 0;
};

class Buffer {
 public:
  void Append(const std::string& s);

 private:
  Mutex mu_{LockRank::kLeaf, "fixture-buffer"};
  std::string data_ GUARDED_BY(mu_);
  const unsigned long capacity_ = 64;       // immutable: exempt
  std::atomic<unsigned long> bytes_{0};     // internally ordered: exempt
  Inner inner_;                             // owns its own lock: exempt
};

}  // namespace fixture
