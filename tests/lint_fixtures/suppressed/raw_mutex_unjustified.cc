// Malformed suppression: names the check but gives no justification, so the
// suppression itself becomes a finding and the violation still counts.
#include <mutex>  // htap-lint: raw-mutex —

namespace fixture {
int Nothing() { return 0; }
}  // namespace fixture
