// Justified suppression: counts against the raw-mutex budget but is not a
// finding by itself.
// htap-lint: raw-mutex — fixture proving a justified suppression is honored
#include <mutex>

namespace fixture {
int Nothing() { return 0; }
}  // namespace fixture
