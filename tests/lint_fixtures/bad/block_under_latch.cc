// bad: blocking acquisitions and file I/O while a spin latch is held.
#include <cstdio>

#include "common/latch.h"
#include "common/mutex.h"

namespace fixture {

SpinLatch g_latch{LockRank::kLeaf, "fixture"};
Mutex g_mu{LockRank::kLeaf, "fixture-mu"};

void Bad() {
  SpinGuard g(g_latch);
  MutexLock lk(&g_mu);          // blocking lock under a spin latch
  fwrite("x", 1, 1, stdout);    // file I/O under a spin latch
}

}  // namespace fixture
