// bad: names the raw std primitives instead of the ranked htap:: wrappers.
#include <mutex>

namespace fixture {

std::mutex g_mu;

int Locked() {
  std::lock_guard<std::mutex> lk(g_mu);
  return 1;
}

}  // namespace fixture
