// bad: atomic operations relying on the implicit seq_cst default.
#include <atomic>

namespace fixture {

std::atomic<unsigned long> counter{0};

unsigned long Bump() {
  counter.fetch_add(1);   // no memory_order named
  return counter.load();  // no memory_order named
}

}  // namespace fixture
