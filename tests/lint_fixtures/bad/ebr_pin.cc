// bad: retire-capable node access and Retire() without an EBR pin.
#include "common/ebr.h"

namespace fixture {

struct Node {
  int count = 0;
  Node* next = nullptr;
};

EpochManager g_ebr;

int ReadUnpinned(Node* n) {
  return n->count;  // deref with no EpochManager::Guard in scope
}

void RetireUnpinned(Node* n) {
  g_ebr.Retire(n, [](void* p) { delete static_cast<Node*>(p); });
}

}  // namespace fixture
