// bad: a mutex-owning class with a mutable member carrying no claim.
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Buffer {
 public:
  void Append(const std::string& s);

 private:
  Mutex mu_{LockRank::kLeaf, "fixture-buffer"};
  std::string data_;  // mutable, no GUARDED_BY
  unsigned long bytes_ = 0;  // mutable, no GUARDED_BY
};

}  // namespace fixture
