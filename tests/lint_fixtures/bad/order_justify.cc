// bad: non-relaxed orders with no `order:` comment naming the pairing edge.
#include <atomic>

namespace fixture {

std::atomic<bool> ready{false};

void Publish() { ready.store(true, std::memory_order_release); }

bool Consume() { return ready.load(std::memory_order_acquire); }

}  // namespace fixture
