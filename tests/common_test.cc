// Tests for common/: Status/Result, Random/Zipfian, Bitmap, latches,
// clocks, ThreadPool.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/bitmap.h"
#include "common/clock.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace htap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_EQ(Status::NotFound("key 7").ToString(), "NotFound: key 7");
  EXPECT_FALSE(Status::Corruption().ok());
}

TEST(ResultTest, ValueAndStatusPropagation) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = []() -> Result<int> { return 7; };
  auto outer = [&]() -> Result<int> {
    HTAP_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  EXPECT_EQ(*outer(), 14);

  auto failing = []() -> Result<int> { return Status::IOError("disk"); };
  auto outer2 = [&]() -> Result<int> {
    HTAP_ASSIGN_OR_RETURN(int v, failing());
    return v;
  };
  EXPECT_TRUE(outer2().status().IsIOError());
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(17), b(17), c(18);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.UniformRange(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RandomTest, NURandWithinBounds) {
  Random r(2);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.NURand(8191, 1, 100000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100000);
  }
}

TEST(RandomTest, ZipfianSkewsTowardHead) {
  ZipfianGenerator z(1000, 0.99, 3);
  size_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (z.Next() < 100) ++head;
  // With theta=0.99, the top 10% of keys should absorb well over half.
  EXPECT_GT(head, static_cast<size_t>(n / 2));
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b(100);
  EXPECT_FALSE(b.Test(5));
  b.Set(5);
  EXPECT_TRUE(b.Test(5));
  b.Clear(5);
  EXPECT_FALSE(b.Test(5));
}

TEST(BitmapTest, GrowsOnDemand) {
  Bitmap b;
  b.Set(1000);
  EXPECT_TRUE(b.Test(1000));
  EXPECT_FALSE(b.Test(999));
  EXPECT_GE(b.size(), 1001u);
}

TEST(BitmapTest, CountAndAnySet) {
  Bitmap b(256);
  EXPECT_FALSE(b.AnySet());
  for (size_t i = 0; i < 256; i += 3) b.Set(i);
  EXPECT_TRUE(b.AnySet());
  EXPECT_EQ(b.Count(), (256 + 2) / 3);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, UnionWith) {
  Bitmap a(10), b(64);
  a.Set(1);
  b.Set(40);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(40));
}

TEST(LatchTest, SpinLatchMutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        SpinGuard g(latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(LatchTest, TryLock) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock c;
  EXPECT_EQ(c.NowMicros(), 0);
  c.AdvanceTo(100);
  EXPECT_EQ(c.NowMicros(), 100);
  c.AdvanceTo(50);  // never goes backward
  EXPECT_EQ(c.NowMicros(), 100);
  c.AdvanceBy(10);
  EXPECT_EQ(c.NowMicros(), 110);
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock* c = WallClock::Default();
  const Micros a = c->NowMicros();
  const Micros b = c->NowMicros();
  EXPECT_LE(a, b);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.Submit([&] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, QuotaLimitsConcurrency) {
  ThreadPool pool(4);
  pool.SetConcurrencyQuota(1);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      const int cur = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (cur > prev && !max_running.compare_exchange_weak(prev, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      running.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(max_running.load(), 1);
}

TEST(ThreadPoolTest, WaitReturnsWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: returns immediately
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace htap
