// Tests for types/: Value semantics, comparison, hashing, codec; Schema
// validation; Row codec.

#include <gtest/gtest.h>

#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace htap {
namespace {

TEST(ValueTest, NullSemantics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(Value::Null(), Value());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(int64_t{7}).type(), Type::kInt64);
  EXPECT_EQ(Value(1.0).type(), Type::kDouble);
  EXPECT_EQ(Value("x").type(), Type::kString);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value::Null().Compare(Value("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  // Numbers sort before strings (total order for mixed columns).
  EXPECT_LT(Value(int64_t{999}).Compare(Value("0")), 0);
}

TEST(ValueTest, HashConsistentForEqualValues) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("key").Hash(), Value("key").Hash());
  // Integral doubles hash like their integers (join-key compatibility).
  EXPECT_EQ(Value(5.0).Hash(), Value(int64_t{5}).Hash());
  EXPECT_NE(Value(int64_t{5}).Hash(), Value(int64_t{6}).Hash());
}

TEST(ValueTest, CodecRoundTrip) {
  const Value cases[] = {Value::Null(), Value(int64_t{-17}),
                         Value(int64_t{1} << 62), Value(2.75), Value(""),
                         Value("hello world"), Value(std::string(1000, 'x'))};
  std::string buf;
  for (const Value& v : cases) v.EncodeTo(&buf);
  size_t pos = 0;
  for (const Value& expected : cases) {
    Value got;
    ASSERT_TRUE(Value::DecodeFrom(buf, &pos, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ValueTest, DecodeRejectsTruncation) {
  std::string buf;
  Value("hello").EncodeTo(&buf);
  buf.resize(buf.size() - 2);
  size_t pos = 0;
  Value out;
  EXPECT_FALSE(Value::DecodeFrom(buf, &pos, &out));
}

TEST(SchemaTest, ValidateRequirements) {
  EXPECT_TRUE(Schema({{"id", Type::kInt64}}).Validate().ok());
  EXPECT_FALSE(Schema(std::vector<ColumnDef>{}).Validate().ok());
  // PK must be INT64.
  EXPECT_FALSE(Schema({{"name", Type::kString}}).Validate().ok());
  // Duplicate names rejected.
  EXPECT_FALSE(Schema({{"a", Type::kInt64}, {"a", Type::kInt64}})
                   .Validate()
                   .ok());
  // PK index out of range rejected.
  EXPECT_FALSE(Schema({{"id", Type::kInt64}}, 3).Validate().ok());
}

TEST(SchemaTest, FindColumnAndProject) {
  Schema s({{"id", Type::kInt64}, {"name", Type::kString},
            {"price", Type::kDouble}});
  EXPECT_EQ(s.FindColumn("price"), 2);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "price");
  EXPECT_EQ(p.column(1).name, "id");
}

TEST(RowTest, KeyExtraction) {
  Schema s({{"a", Type::kString}, {"id", Type::kInt64}}, /*pk_index=*/1);
  ASSERT_TRUE(s.Validate().ok());
  Row r{Value("x"), Value(int64_t{99})};
  EXPECT_EQ(r.GetKey(s), 99);
}

TEST(RowTest, CodecRoundTrip) {
  Row r{Value(int64_t{1}), Value::Null(), Value(2.5), Value("abc")};
  std::string buf;
  r.EncodeTo(&buf);
  size_t pos = 0;
  Row got;
  ASSERT_TRUE(Row::DecodeFrom(buf, &pos, &got));
  EXPECT_EQ(got, r);
}

TEST(RowTest, EmptyRowRoundTrip) {
  Row r;
  std::string buf;
  r.EncodeTo(&buf);
  size_t pos = 0;
  Row got{Value(int64_t{1})};
  ASSERT_TRUE(Row::DecodeFrom(buf, &pos, &got));
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace htap
