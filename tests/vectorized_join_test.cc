// Batch-native join tests (DESIGN.md §13): the batch join pipeline — keys
// extracted from column batches, lineage-only intermediates, columnar spill
// pages, late payload gather — must be byte-identical to the row join path
// across thread counts, forced-spill budgets, batch sizes, hash-collision
// masks, NULL keys, and multi-join SQL chains. Runs under ASan and TSan via
// ./ci.sh.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "exec/batch.h"
#include "exec/executor.h"
#include "storage/spill_file.h"

namespace htap {
namespace {

Schema FactSchema() {
  return Schema({{"id", Type::kInt64},
                 {"fk", Type::kInt64},
                 {"tag", Type::kString},
                 {"amount", Type::kDouble}});
}

Schema DimSchema() {
  return Schema({{"id", Type::kInt64},
                 {"name", Type::kString},
                 {"weight", Type::kDouble}});
}

/// Duplicate keys, NULL keys on both sides, and string payloads (so the
/// spill pages and late gather both carry heap data).
std::vector<Row> FactRows(int64_t n) {
  std::vector<Row> out;
  for (int64_t i = 0; i < n; ++i) {
    Row r{Value(i), Value(i % 97), Value("tag_" + std::to_string(i % 7)),
          Value(i * 0.25)};
    if (i % 31 == 0) r.Set(1, Value::Null());
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<Row> DimRows(int64_t n) {
  std::vector<Row> out;
  for (int64_t i = 0; i < n; ++i) {
    Row r{Value(i % 97), Value("dim_" + std::to_string(i)), Value(i * 1.5)};
    if (i % 41 == 0) r.Set(0, Value::Null());
    out.push_back(std::move(r));
  }
  return out;
}

TEST(RowsToBatchesTest, RoundTripsAtEveryBatchSize) {
  const std::vector<Row> rows = FactRows(257);
  for (size_t batch_rows : {size_t{0}, size_t{1}, size_t{64}, size_t{1000}}) {
    const auto batches = RowsToBatches(rows, FactSchema(), {}, batch_rows);
    EXPECT_EQ(rows, BatchesToRows(batches)) << "batch_rows=" << batch_rows;
    if (batch_rows == 0) EXPECT_EQ(batches.size(), 1u);
  }
  EXPECT_TRUE(RowsToBatches({}, FactSchema(), {}, 64).empty());
}

TEST(SpillPageTest, EncodeDecodeRoundTripsEveryKind) {
  const auto round_trip = [](const SpillPage& page) {
    std::string buf;
    EncodeSpillPage(page, &buf);
    SpillPage got;
    size_t pos = 0;
    ASSERT_TRUE(DecodeSpillPage(buf, &pos, &got));
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(page.idx, got.idx);
    EXPECT_EQ(page.boxed, got.boxed);
    if (page.boxed) {
      EXPECT_EQ(page.vals, got.vals);
    } else {
      EXPECT_EQ(page.type, got.type);
      EXPECT_EQ(page.ints, got.ints);
      EXPECT_EQ(page.doubles, got.doubles);
      EXPECT_EQ(page.strs, got.strs);
    }
  };
  SpillPage ints;
  ints.idx = {5, 0, 7};
  ints.type = Type::kInt64;
  ints.ints = {-1, 42, 1 << 20};
  round_trip(ints);

  SpillPage doubles;
  doubles.idx = {1, 2};
  doubles.type = Type::kDouble;
  doubles.doubles = {-0.5, 1e18};
  round_trip(doubles);

  SpillPage strs;
  strs.idx = {9, 3, 3};
  strs.type = Type::kString;
  strs.strs = {"", "a", std::string(5000, 'x')};
  round_trip(strs);

  SpillPage boxed;
  boxed.idx = {0, 1, 2, 3};
  boxed.boxed = true;
  boxed.vals = {Value(int64_t{7}), Value(2.5), Value("mix"), Value::Null()};
  round_trip(boxed);

  // Truncated input is rejected, not mis-decoded.
  std::string buf;
  EncodeSpillPage(strs, &buf);
  for (size_t cut : {size_t{0}, size_t{3}, buf.size() - 1}) {
    SpillPage got;
    size_t pos = 0;
    EXPECT_FALSE(DecodeSpillPage(buf.substr(0, cut), &pos, &got)) << cut;
  }
}

class VectorizedJoinKernelTest : public ::testing::Test {
 protected:
  VectorizedJoinKernelTest() : pool_(8, "test-vjoin-ap") {}

  ExecContext Ctx(size_t threads, size_t spill_budget, uint64_t mask) {
    ExecContext exec;
    if (threads > 1) {
      exec.pool = &pool_;
      exec.max_parallelism = threads;
      exec.min_parallel_join_build = 1;
    }
    exec.join_spill_budget_bytes = spill_budget;
    exec.join_hash_mask = mask;
    return exec;
  }

  ThreadPool pool_;
};

TEST_F(VectorizedJoinKernelTest, BatchKeysMatchRowPairsEveryRegime) {
  // The same join computed two ways: the row overload (keys extracted from
  // rows) and the batch route (keys extracted from column batches). Pairs
  // must be identical — order included — in the serial, parallel, and grace
  // regimes, with and without forced hash collisions.
  const std::vector<Row> probe = FactRows(3000);
  const std::vector<Row> build = DimRows(2000);
  for (size_t batch_rows : {size_t{0}, size_t{113}, size_t{4096}}) {
    const auto pbatches = RowsToBatches(probe, FactSchema(), {}, batch_rows);
    const auto bbatches = RowsToBatches(build, DimSchema(), {}, batch_rows);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (size_t budget : {size_t{0}, size_t{1}, size_t{64 << 10}}) {
        for (uint64_t mask : {~uint64_t{0}, uint64_t{0xF}}) {
          const ExecContext exec = Ctx(threads, budget, mask);
          JoinStats row_js, batch_js;
          const JoinPairs expect =
              HashJoinPairs(probe, build, 1, 0, exec, &row_js);
          const std::vector<size_t> weights = EstimateBatchRowBytes(bbatches);
          const JoinPairs got = HashJoinPairsKeys(
              ExtractJoinKeys(pbatches, 1), ExtractJoinKeys(bbatches, 0),
              exec, &batch_js, budget > 0 ? &weights : nullptr);
          ASSERT_EQ(expect, got)
              << "batch_rows=" << batch_rows << " threads=" << threads
              << " budget=" << budget << " mask=" << mask;
          EXPECT_EQ(row_js.partitions_spilled, batch_js.partitions_spilled);
          if (budget == 1) {
            // Everything spills: pages flowed both directions and carried
            // every spilled key exactly once.
            EXPECT_GT(batch_js.spill_pages_written, 0u);
            EXPECT_EQ(batch_js.spill_pages_read, batch_js.spill_pages_written);
            EXPECT_GT(batch_js.spill_rows_written, 0u);
          }
        }
      }
    }
  }
}

/// End-to-end identity: the same plans executed with the batch join
/// pipeline on and off must return byte-identical results — across
/// architectures, batch sizes, thread counts, and forced-spill budgets.
class VectorizedJoinPlanTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Database> Open(ArchitectureKind arch,
                                        bool vectorized_join,
                                        size_t batch_rows, size_t threads,
                                        size_t spill_budget) {
    DatabaseOptions opts;
    opts.architecture = arch;
    opts.background_sync = false;
    opts.vectorized_join = vectorized_join;
    opts.vectorized_batch_rows = batch_rows;
    opts.parallel_scan_threads = threads;
    opts.parallel_join_min_build_rows = 1;
    opts.join_spill_budget_bytes = spill_budget;
    auto db = std::move(*Database::Open(opts));
    Seed(db.get());
    return db;
  }

  static void Seed(Database* db) {
    ASSERT_TRUE(db->ExecuteSql("CREATE TABLE item (i_id INT64 PRIMARY KEY, "
                               "name STRING, price DOUBLE)")
                    .ok());
    ASSERT_TRUE(db->ExecuteSql("CREATE TABLE sale (s_id INT64 PRIMARY KEY, "
                               "item_id INT64, qty INT64)")
                    .ok());
    ASSERT_TRUE(db->ExecuteSql("CREATE TABLE promo (p_id INT64 PRIMARY KEY, "
                               "p_item INT64, bonus INT64)")
                    .ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(db->ExecuteSql("INSERT INTO item VALUES (" +
                                 std::to_string(i) + ", 'item_" +
                                 std::to_string(i % 5) + "', " +
                                 std::to_string(i) + ".5)")
                      .ok());
      ASSERT_TRUE(db->ExecuteSql("INSERT INTO promo VALUES (" +
                                 std::to_string(1000 + i) + ", " +
                                 std::to_string(i % 13) + ", " +
                                 std::to_string(i % 3) + ")")
                      .ok());
    }
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->ExecuteSql("INSERT INTO sale VALUES (" +
                                 std::to_string(10000 + i) + ", " +
                                 std::to_string(i % 40) + ", " +
                                 std::to_string(i % 7) + ")")
                      .ok());
    }
    ASSERT_TRUE(db->ForceSyncAll().ok());
  }

  static std::vector<std::string> Queries() {
    return {
        // Two-table join, full output (late gather of every column).
        "SELECT * FROM sale JOIN item ON sale.item_id = item.i_id",
        // Projection-only output: late materialization gathers 2 columns.
        "SELECT item.name, sale.qty FROM sale "
        "JOIN item ON sale.item_id = item.i_id WHERE sale.qty > 2",
        // Three-table chain into an aggregate (scan -> join -> aggregate
        // without intermediate row materialization).
        "SELECT item.name, SUM(sale.qty) AS sold, COUNT(*) AS n FROM sale "
        "JOIN item ON sale.item_id = item.i_id "
        "JOIN promo ON item.i_id = promo.p_item "
        "GROUP BY item.name ORDER BY sold DESC",
        // Chain with predicates on every input and a global aggregate.
        "SELECT COUNT(*) AS n, AVG(item.price) AS p FROM sale "
        "JOIN item ON sale.item_id = item.i_id "
        "JOIN promo ON item.i_id = promo.p_item "
        "WHERE sale.qty > 1 AND promo.bonus > 0 AND item.price < 30.0",
    };
  }

  static void ExpectSameResults(Database* row_db, Database* batch_db,
                                const std::string& label) {
    for (const std::string& q : Queries()) {
      auto expect = row_db->ExecuteSql(q);
      ASSERT_TRUE(expect.ok()) << expect.status().ToString() << " " << q;
      QueryExecInfo info;
      auto got = batch_db->ExecuteSql(q, &info);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << " " << q;
      EXPECT_EQ(expect->rows, got->rows) << label << " query: " << q;
    }
  }
};

TEST_F(VectorizedJoinPlanTest, BatchJoinMatchesRowJoinAcrossKnobs) {
  for (ArchitectureKind arch : {ArchitectureKind::kRowPlusInMemoryColumn,
                                ArchitectureKind::kColumnPlusDeltaRow}) {
    for (size_t batch_rows : {size_t{7}, size_t{4096}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (size_t budget : {size_t{0}, size_t{1}}) {
          auto row_db = Open(arch, /*vectorized_join=*/false, batch_rows,
                             threads, budget);
          auto batch_db = Open(arch, /*vectorized_join=*/true, batch_rows,
                               threads, budget);
          ExpectSameResults(
              row_db.get(), batch_db.get(),
              "arch=" + std::to_string(static_cast<int>(arch)) +
                  " batch_rows=" + std::to_string(batch_rows) + " threads=" +
                  std::to_string(threads) + " budget=" +
                  std::to_string(budget));
        }
      }
    }
  }
}

TEST_F(VectorizedJoinPlanTest, DistributedLearnerServesBatchJoins) {
  // Architecture (b) now offers its learner batch scan: the batch pipeline
  // must produce the row pipeline's results there too.
  auto row_db = Open(ArchitectureKind::kDistributedRowPlusColumnReplica,
                     /*vectorized_join=*/false, 4096, 1, 0);
  auto batch_db = Open(ArchitectureKind::kDistributedRowPlusColumnReplica,
                       /*vectorized_join=*/true, 4096, 1, 0);
  ExpectSameResults(row_db.get(), batch_db.get(), "arch=b");
}

TEST_F(VectorizedJoinPlanTest, BatchPipelineReportsJoinCounters) {
  auto db = Open(ArchitectureKind::kRowPlusInMemoryColumn,
                 /*vectorized_join=*/true, 4096, 1, 0);
  QueryExecInfo info;
  auto res = db->ExecuteSql(
      "SELECT item.name, SUM(sale.qty) AS sold FROM sale "
      "JOIN item ON sale.item_id = item.i_id "
      "JOIN promo ON item.i_id = promo.p_item GROUP BY item.name",
      &info);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(info.vectorized);
  EXPECT_GT(info.join.join_batches, 0u);
  EXPECT_GT(info.join.rows_late_materialized, 0u);
  EXPECT_EQ(info.join_steps.size(), 2u);

  // With the knob off the same plan reports the row pipeline.
  auto off = Open(ArchitectureKind::kRowPlusInMemoryColumn,
                  /*vectorized_join=*/false, 4096, 1, 0);
  QueryExecInfo off_info;
  ASSERT_TRUE(off->ExecuteSql(
                     "SELECT item.name, SUM(sale.qty) AS sold FROM sale "
                     "JOIN item ON sale.item_id = item.i_id "
                     "JOIN promo ON item.i_id = promo.p_item "
                     "GROUP BY item.name",
                     &off_info)
                  .ok());
  EXPECT_EQ(off_info.join.join_batches, 0u);
  EXPECT_EQ(off_info.join.rows_late_materialized, 0u);
}

TEST_F(VectorizedJoinPlanTest, ForcedSpillStaysIdenticalEndToEnd) {
  // A 1-byte budget forces every join step through the grace path's
  // columnar spill pages; results and reported spill activity must agree
  // with the row pipeline's spill.
  auto row_db = Open(ArchitectureKind::kRowPlusInMemoryColumn,
                     /*vectorized_join=*/false, 64, 1, 1);
  auto batch_db = Open(ArchitectureKind::kRowPlusInMemoryColumn,
                       /*vectorized_join=*/true, 64, 1, 1);
  for (const std::string& q : Queries()) {
    auto expect = row_db->ExecuteSql(q);
    ASSERT_TRUE(expect.ok());
    QueryExecInfo info;
    auto got = batch_db->ExecuteSql(q, &info);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(expect->rows, got->rows) << q;
    EXPECT_GT(info.join.spill_pages_written, 0u) << q;
    EXPECT_GT(info.join.spill_pages_read, 0u) << q;
  }
}

}  // namespace
}  // namespace htap
