// Concurrency stress for the scalable TP front end (DESIGN.md §15):
//
//  * OLC B+-tree under concurrent readers/writers/erasers — lookups see
//    exactly their writer's payloads, scans stay sorted and duplicate-free,
//    and a final value-sum invariant holds.
//  * Sharded-commit visibility: a snapshot's sum over accounts is always a
//    multiple of the invariant total — a snapshot can never observe a CSN
//    above the min per-shard frontier (i.e. a half-stamped transaction).
//  * Sink publication stays strictly CSN-ordered under concurrent commits.
//
// All tests here are in the TSan suite (ci.sh) and must stay clean with
// zero suppressions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "index/btree.h"
#include "storage/mvcc_row_store.h"
#include "txn/txn_manager.h"

namespace htap {
namespace {

// ---------------------------------------------------------------------------
// OLC B+-tree stress
// ---------------------------------------------------------------------------

// Writers insert disjoint key ranges (payload = key), erasers remove a known
// subset of their own range, readers run point lookups and range scans the
// whole time. Order 8 keeps the tree deep so splits/merges/root growth are
// constantly exercised.
TEST(OlcBtreeStressTest, ConcurrentInsertEraseLookupScan) {
  BTree tree(/*order=*/8);
  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_failures{0};

  auto key_of = [](int writer, int i) {
    return static_cast<Key>(writer * 1'000'000 + i);
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      uint64_t payload;
      while (!stop.load(std::memory_order_acquire)) {
        // Point lookups: a present key must carry payload == key.
        for (int w = 0; w < kWriters; ++w) {
          const Key k = key_of(w, (r * 37) % kKeysPerWriter);
          if (tree.Lookup(k, &payload) && payload != static_cast<uint64_t>(k))
            reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Scans: keys strictly ascending, payload always matching.
        Key prev = std::numeric_limits<Key>::min();
        tree.Scan(0, key_of(kWriters, 0), [&](Key k, uint64_t p) {
          if (k <= prev || p != static_cast<uint64_t>(k))
            reader_failures.fetch_add(1, std::memory_order_relaxed);
          prev = k;
          return true;
        });
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        const Key k = key_of(w, i);
        ASSERT_TRUE(tree.Insert(k, static_cast<uint64_t>(k)));
        // Erase every third key a beat later to keep merges firing.
        if (i % 3 == 2) ASSERT_TRUE(tree.Erase(key_of(w, i - 1)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reader_failures.load(), 0u);

  // Value-sum invariant: exactly the non-erased keys remain.
  __int128 expect_sum = 0;
  size_t expect_count = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      if (i % 3 == 1) continue;  // erased by its writer
      expect_sum += key_of(w, i);
      ++expect_count;
    }
  }
  __int128 sum = 0;
  size_t count = 0;
  Key prev = std::numeric_limits<Key>::min();
  tree.ScanAll([&](Key k, uint64_t p) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(p, static_cast<uint64_t>(k));
    prev = k;
    sum += k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, expect_count);
  EXPECT_EQ(tree.size(), expect_count);
  EXPECT_TRUE(sum == expect_sum);

  // Every erased key is really gone; every kept key is reachable.
  uint64_t payload;
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_FALSE(tree.Lookup(key_of(w, 1), &payload));
    EXPECT_TRUE(tree.Lookup(key_of(w, 0), &payload));
  }
}

// Insert/erase churn over one small hot range from many threads: exercises
// split-vs-merge races, root growth/collapse, and EBR retirement under
// contention. Keys are partitioned mod-thread so each key has one owner.
TEST(OlcBtreeStressTest, HotRangeChurn) {
  BTree tree(/*order=*/4);  // minimum order: maximum structural churn
  constexpr int kThreads = 4;
  constexpr int kRounds = 300;
  constexpr int kRange = 256;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t payload;
      for (int round = 0; round < kRounds; ++round) {
        for (int k = t; k < kRange; k += kThreads)
          tree.Insert(k, static_cast<uint64_t>(k) * 2);
        for (int k = t; k < kRange; k += kThreads) {
          if (tree.Lookup(k, &payload)) EXPECT_EQ(payload, uint64_t(k) * 2);
        }
        for (int k = t; k < kRange; k += kThreads) tree.Erase(k);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.size(), 0u);
  size_t seen = 0;
  tree.ScanAll([&](Key, uint64_t) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 0u);
}

// ---------------------------------------------------------------------------
// Sharded commit path
// ---------------------------------------------------------------------------

Schema AccountSchema() {
  return Schema({{"id", Type::kInt64}, {"balance", Type::kInt64}});
}

// Transfer workload: every committed transaction moves an amount between two
// accounts, preserving the total. A concurrent reader summing all accounts
// at one snapshot must always see exactly the initial total — if a snapshot
// could ever observe a CSN above the min per-shard frontier, it would catch
// a transaction with only one leg stamped and the sum would drift.
TEST(ShardedCommitTest, SnapshotNeverSeesHalfStampedTransfer) {
  TransactionManager mgr(nullptr, /*commit_shards=*/8);
  MvccRowStore store(1, AccountSchema(), &mgr, nullptr);

  constexpr int kAccounts = 32;
  constexpr int64_t kInitial = 1000;
  constexpr int kWriters = 4;
  constexpr int kTransfersPerWriter = 400;

  {
    auto txn = mgr.Begin();
    for (int a = 0; a < kAccounts; ++a)
      ASSERT_TRUE(
          store.Insert(txn.get(), Row{Value(Key(a)), Value(kInitial)}).ok());
    ASSERT_TRUE(mgr.Commit(txn.get()).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_sums{0};
  std::thread auditor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Snapshot snap = mgr.CurrentSnapshot();
      int64_t sum = 0;
      int seen = 0;
      Row out;
      for (int a = 0; a < kAccounts; ++a) {
        if (store.Get(snap, a, &out).ok()) {
          sum += out.Get(1).AsInt64();
          ++seen;
        }
      }
      if (seen != kAccounts || sum != kAccounts * kInitial)
        bad_sums.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  std::atomic<uint64_t> committed{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      uint64_t rng = 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(w + 1);
      for (int i = 0; i < kTransfersPerWriter; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        // Unsigned modular arithmetic throughout: a signed cast of rng >> 15
        // can go negative, and a negative remainder would allow to == from
        // (a self-transfer updates one key twice and mints money).
        const int from = static_cast<int>((rng >> 33) % kAccounts);
        const int to = static_cast<int>(
            (static_cast<uint64_t>(from) + 1 + (rng >> 15) % (kAccounts - 1)) %
            kAccounts);
        const int64_t amount = 1 + static_cast<int64_t>(rng % 7);
        auto txn = mgr.Begin();
        Row a, b;
        if (!store.Get(txn->snapshot(), from, &a).ok() ||
            !store.Get(txn->snapshot(), to, &b).ok()) {
          mgr.Abort(txn.get());
          continue;
        }
        if (!store
                 .Update(txn.get(), Row{Value(Key(from)),
                                        Value(a.Get(1).AsInt64() - amount)})
                 .ok() ||
            !store
                 .Update(txn.get(), Row{Value(Key(to)),
                                        Value(b.Get(1).AsInt64() + amount)})
                 .ok()) {
          mgr.Abort(txn.get());  // first-updater-wins conflict: retry later
          continue;
        }
        if (mgr.Commit(txn.get()).ok())
          committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  auditor.join();

  EXPECT_EQ(bad_sums.load(), 0u);
  EXPECT_GT(committed.load(), 0u);

  // Quiesced: the watermark equals the allocation frontier and the final
  // sum is intact.
  EXPECT_EQ(mgr.LastCommittedCsn(), mgr.LastAllocatedCsn());
  int64_t sum = 0;
  Row out;
  for (int a = 0; a < kAccounts; ++a) {
    ASSERT_TRUE(store.Get(mgr.CurrentSnapshot(), a, &out).ok());
    sum += out.Get(1).AsInt64();
  }
  EXPECT_EQ(sum, kAccounts * kInitial);
}

// The published watermark can never run ahead of the allocation counter,
// and begin snapshots are monotone across sequential commits.
TEST(ShardedCommitTest, WatermarkBoundedByAllocation) {
  TransactionManager mgr(nullptr, /*commit_shards=*/4);
  MvccRowStore store(1, AccountSchema(), &mgr, nullptr);
  CSN last = mgr.LastCommittedCsn();
  for (int i = 0; i < 100; ++i) {
    auto txn = mgr.Begin();
    ASSERT_TRUE(
        store.Insert(txn.get(), Row{Value(Key(i)), Value(int64_t(i))}).ok());
    ASSERT_TRUE(mgr.Commit(txn.get()).ok());
    const CSN committed = mgr.LastCommittedCsn();
    EXPECT_GT(committed, last);
    EXPECT_LE(committed, mgr.LastAllocatedCsn());
    last = committed;
  }
  EXPECT_EQ(mgr.commits(), 100u);
}

// ---------------------------------------------------------------------------
// Ordered sink publication
// ---------------------------------------------------------------------------

class RecordingSink : public ChangeSink {
 public:
  void OnCommit(const std::vector<ChangeEvent>& events) override {
    // Called under publish_mu_ + sinks_mu_, so plain fields are safe here —
    // but keep the vector append and the order check data-race-free anyway.
    for (const ChangeEvent& ev : events) csns_.push_back(ev.csn);
  }
  std::vector<CSN> csns_;
};

TEST(ShardedCommitTest, SinkPublicationStaysCsnOrdered) {
  TransactionManager mgr(nullptr, /*commit_shards=*/8);
  MvccRowStore store(1, AccountSchema(), &mgr, nullptr);
  RecordingSink sink;
  mgr.RegisterSink(&sink);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 250;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto txn = mgr.Begin();
        const Key key = Key(w) * 100000 + i;
        ASSERT_TRUE(
            store.Insert(txn.get(), Row{Value(key), Value(int64_t(i))}).ok());
        ASSERT_TRUE(mgr.Commit(txn.get()).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  mgr.UnregisterSink(&sink);

  ASSERT_EQ(sink.csns_.size(), size_t(kWriters) * kPerWriter);
  for (size_t i = 1; i < sink.csns_.size(); ++i) {
    EXPECT_LT(sink.csns_[i - 1], sink.csns_[i])
        << "publication order violated at index " << i;
  }
}

}  // namespace
}  // namespace htap
