// Regression stress tests for the data races fixed during the thread-safety
// annotation sweep (DESIGN.md §11). Each test pins one former bug: an
// accessor that read guarded state without its lock while a writer mutated
// it. They are meaningful under ThreadSanitizer (ci.sh runs them in the
// build-tsan tree) and still catch torn-read symptoms (monotonic counters
// going backwards, crashes on a freed IMCS generation) in plain builds.
//
// Former bugs, by test:
//  - SyncStatsReadRacesMerge:       DataSynchronizer::stats() returned a
//    reference into state mutated under mu_ by SyncTo().
//  - WalSyncCountReadRacesAppend:   WalWriter::sync_count() read the counter
//    without mu_ while Append()/Sync() wrote it.
//  - DiskHeapCountersRaceWrites:    DiskRowStore::num_pages() and the
//    then-exposed BufferPool reference were read without mu_ while Put()
//    mutated the pool and page counters.
//  - StatsRefreshRacesConcurrentScans:  both per-table stats refreshers
//    mutated TableStats in place while concurrent scans pointed the cost
//    model directly at the shared struct.
//  - ColumnSelectionRefreshRacesScans:  RefreshColumnSelection destroyed
//    the IMCS ColumnTable (then a unique_ptr) that a concurrent scan was
//    reading, and unserialized delta drains could apply out of order.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/engines.h"
#include "storage/disk_row_store.h"
#include "storage/mvcc_row_store.h"
#include "sync/sync.h"
#include "wal/wal.h"

namespace htap {
namespace {

Schema KvSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

Row MakeRow(Key id, int64_t v) { return Row{Value(id), Value(v)}; }

TEST(ThreadSafetyRegressionTest, SyncStatsReadRacesMerge) {
  TransactionManager mgr;
  MvccRowStore rows(1, KvSchema(), &mgr, nullptr);
  auto delta = std::make_unique<InMemoryDeltaStore>();
  InMemoryDeltaStore* delta_ptr = delta.get();
  ColumnTable table(KvSchema());
  DataSynchronizer sync(
      SyncStrategy::kInMemoryMerge, &table,
      std::make_unique<DeltaSourceAdapter<InMemoryDeltaStore>>(delta_ptr));
  struct Router : ChangeSink {
    InMemoryDeltaStore* d;
    void OnCommit(const std::vector<ChangeEvent>& evs) override {
      d->AppendBatch(evs, 1);
    }
  } router;
  router.d = delta_ptr;
  mgr.RegisterSink(&router);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last_merges = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const SyncStats ss = sync.stats();
      EXPECT_GE(ss.merges, last_merges);  // snapshot is never torn/backwards
      last_merges = ss.merges;
    }
  });
  for (int i = 0; i < 300; ++i) {
    auto t = mgr.Begin();
    ASSERT_TRUE(rows.Insert(t.get(), MakeRow(i, i)).ok());
    ASSERT_TRUE(mgr.Commit(t.get()).ok());
    ASSERT_TRUE(sync.SyncTo(mgr.LastCommittedCsn()).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(sync.stats().merges, 300u);
}

TEST(ThreadSafetyRegressionTest, WalSyncCountReadRacesAppend) {
  WalWriter::Options wo;  // empty path: in-memory log
  WalWriter wal(wo);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t n = wal.sync_count();
      EXPECT_GE(n, last);
      last = n;
    }
  });
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  for (int i = 0; i < 500; ++i) {
    rec.txn_id = static_cast<uint64_t>(i);
    rec.csn = static_cast<CSN>(i + 1);
    wal.Append(rec);
    wal.Sync();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(wal.sync_count(), 500u);
}

TEST(ThreadSafetyRegressionTest, DiskHeapCountersRaceWrites) {
  char tmpl[] = "/tmp/htap_tsreg_XXXXXX";
  const std::string dir = mkdtemp(tmpl);
  {
    DiskRowStore store(dir + "/heap", KvSchema(), 8);
    ASSERT_TRUE(store.Open().ok());
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      uint32_t last_pages = 0;
      uint64_t last_evictions = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const uint32_t pages = store.num_pages();
        EXPECT_GE(pages, last_pages);
        last_pages = pages;
        const BufferPoolStats bp = store.pool_stats();
        EXPECT_GE(bp.evictions, last_evictions);
        EXPECT_LE(bp.cached_pages, 8u);  // never exceeds the pool capacity
        last_evictions = bp.evictions;
      }
    });
    for (int i = 0; i < 2000; ++i)
      ASSERT_TRUE(store.Put(MakeRow(i, i)).ok());
    stop.store(true, std::memory_order_release);
    reader.join();
  }
  std::system(("rm -rf " + dir).c_str());
}

class EngineRaceTest : public ::testing::Test {
 protected:
  void Open(ArchitectureKind arch) {
    char tmpl[] = "/tmp/htap_tsreg_XXXXXX";
    dir_ = mkdtemp(tmpl);
    DatabaseOptions opts;
    opts.architecture = arch;
    opts.data_dir = dir_;
    opts.background_sync = true;    // merge daemon runs during the race
    opts.sync_interval_micros = 500;
    opts.stats_refresh_interval = 1;  // force a stats refresh per scan
    auto res = Database::Open(opts);
    ASSERT_TRUE(res.ok());
    db_ = std::move(*res);
    ASSERT_TRUE(db_->CreateTable("kv", KvSchema()).ok());
    for (int i = 0; i < 256; ++i)
      ASSERT_TRUE(db_->InsertRow("kv", MakeRow(i, i)).ok());
  }

  void TearDown() override {
    db_.reset();
    std::system(("rm -rf " + dir_).c_str());
  }

  /// N scanner threads running SELECTs (each triggering a stats refresh)
  /// while the caller-provided mutator runs on the main thread.
  void RaceScansAgainst(const std::function<void()>& mutate) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> scanners;
    for (int s = 0; s < 3; ++s) {
      scanners.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          auto res = db_->ExecuteSql("SELECT v FROM kv WHERE v >= 0");
          ASSERT_TRUE(res.ok());
          EXPECT_EQ(res->rows.size(), 256u);
        }
      });
    }
    mutate();
    stop.store(true, std::memory_order_release);
    for (auto& t : scanners) t.join();
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(EngineRaceTest, StatsRefreshRacesConcurrentScans) {
  Open(ArchitectureKind::kRowPlusInMemoryColumn);
  RaceScansAgainst([&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_->UpdateRow("kv", MakeRow(i % 256, i)).ok());
      ASSERT_TRUE(db_->ForceSync("kv").ok());
    }
  });
}

TEST_F(EngineRaceTest, ColumnSelectionRefreshRacesScans) {
  Open(ArchitectureKind::kDiskRowPlusDistributedColumn);
  auto* disk = dynamic_cast<DiskHtapEngine*>(db_->engine());
  ASSERT_NE(disk, nullptr);
  const TableInfo* info = db_->catalog()->Find("kv");
  ASSERT_NE(info, nullptr);
  RaceScansAgainst([&] {
    // Each iteration replaces the IMCS generation wholesale while the
    // scanners sync + scan it; generation pinning must keep every scan on
    // a live ColumnTable and merges in commit order.
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_->UpdateRow("kv", MakeRow(i % 256, 1000 + i)).ok());
      ASSERT_TRUE(disk->RefreshColumnSelection(*info).ok());
      ASSERT_TRUE(db_->ForceSync("kv").ok());
    }
  });
}

}  // namespace
}  // namespace htap
