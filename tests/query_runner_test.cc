// Query-runner tests: output schemas, the aggregate projection-pushdown
// remapping, join + aggregate composition, ORDER BY/LIMIT interplay, and
// scan-request contents observed through a spy scan function.

#include <gtest/gtest.h>

#include "core/query_runner.h"

namespace htap {
namespace {

class QueryRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable("sales",
                              Schema({{"id", Type::kInt64},
                                      {"cust", Type::kInt64},
                                      {"qty", Type::kInt64},
                                      {"price", Type::kDouble},
                                      {"note", Type::kString}}),
                              nullptr)
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable("cust", Schema({{"c_id", Type::kInt64},
                                              {"c_name", Type::kString}}),
                              nullptr)
                    .ok());
    // 20 sales rows: cust in {1,2}, qty = i%5, price = i.
    for (int i = 0; i < 20; ++i)
      sales_.push_back(Row{Value(static_cast<int64_t>(i)),
                           Value(static_cast<int64_t>(i % 2 + 1)),
                           Value(static_cast<int64_t>(i % 5)),
                           Value(static_cast<double>(i)),
                           Value("n" + std::to_string(i))});
    cust_.push_back(Row{Value(int64_t{1}), Value("alice")});
    cust_.push_back(Row{Value(int64_t{2}), Value("bob")});
  }

  /// Scan function that serves the in-memory rows honoring the projection
  /// and records what was requested.
  ScanFn MakeScan() {
    return [this](const ScanRequest& req, ScanStats*,
                  std::string*) -> Result<std::vector<Row>> {
      last_projection_ = req.projection;
      const auto& source = req.table->name == "sales" ? sales_ : cust_;
      std::vector<Row> out;
      for (const Row& r : source) {
        if (!req.pred->Eval(r)) continue;
        if (req.projection.empty()) {
          out.push_back(r);
        } else {
          Row p;
          for (int c : req.projection) p.Append(r.Get(static_cast<size_t>(c)));
          out.push_back(std::move(p));
        }
      }
      return out;
    };
  }

  Catalog catalog_;
  std::vector<Row> sales_, cust_;
  std::vector<int> last_projection_;
};

TEST_F(QueryRunnerTest, SimpleScanPushesUserProjection) {
  QueryPlan plan;
  plan.table = "sales";
  plan.projection = {4, 0};
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(last_projection_, (std::vector<int>{4, 0}));
  EXPECT_EQ(res->schema.column(0).name, "note");
  EXPECT_EQ(res->rows.size(), 20u);
}

TEST_F(QueryRunnerTest, AggregatePushesOnlyNeededColumnsAndRemaps) {
  QueryPlan plan;
  plan.table = "sales";
  plan.where = Predicate::Ge(0, Value(int64_t{0}));
  plan.group_by = {1};  // cust
  plan.aggs = {AggSpec::Sum(3, "revenue"), AggSpec::Count("n")};
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // Scan saw only {cust, price}, sorted.
  EXPECT_EQ(last_projection_, (std::vector<int>{1, 3}));
  ASSERT_EQ(res->rows.size(), 2u);
  auto rows = res->rows;
  SortLimit(&rows, 0, false, 0);
  // cust 1: ids 0,2,...,18 -> sum of even i = 90; count 10.
  EXPECT_EQ(rows[0].Get(0).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(rows[0].Get(1).AsDouble(), 90.0);
  EXPECT_EQ(rows[0].Get(2).AsInt64(), 10);
  // cust 2: odd i -> 100.
  EXPECT_DOUBLE_EQ(rows[1].Get(1).AsDouble(), 100.0);
  // Output schema names come from the ORIGINAL table layout.
  EXPECT_EQ(res->schema.column(0).name, "cust");
  EXPECT_EQ(res->schema.column(1).name, "revenue");
}

TEST_F(QueryRunnerTest, CountStarOnlyStillWorksWithPushdown) {
  QueryPlan plan;
  plan.table = "sales";
  plan.aggs = {AggSpec::Count("n")};
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 20);
}

TEST_F(QueryRunnerTest, JoinThenAggregateUsesCombinedLayout) {
  QueryPlan plan;
  plan.table = "sales";
  plan.has_join = true;
  plan.join_table = "cust";
  plan.left_col = 1;   // sales.cust
  plan.right_col = 0;  // cust.c_id
  plan.group_by = {6};  // cust.c_name in combined layout (5 + 1)
  plan.aggs = {AggSpec::Sum(2, "total_qty")};
  plan.order_by = 0;
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0].Get(0).AsString(), "alice");
  EXPECT_EQ(res->schema.column(0).name, "c_name");
}

TEST_F(QueryRunnerTest, JoinWherePushedToRightSide) {
  QueryPlan plan;
  plan.table = "sales";
  plan.has_join = true;
  plan.join_table = "cust";
  plan.left_col = 1;
  plan.right_col = 0;
  plan.join_where = Predicate::Eq(1, Value("bob"));  // right-local layout
  plan.aggs = {AggSpec::Count("n")};
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].Get(0).AsInt64(), 10);  // only bob's sales
}

TEST_F(QueryRunnerTest, OrderByDescWithLimit) {
  QueryPlan plan;
  plan.table = "sales";
  plan.projection = {0, 3};
  plan.order_by = 1;  // price, in the projected layout
  plan.order_desc = true;
  plan.limit = 3;
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 3u);
  EXPECT_DOUBLE_EQ(res->rows[0].Get(1).AsDouble(), 19.0);
  EXPECT_DOUBLE_EQ(res->rows[2].Get(1).AsDouble(), 17.0);
}

TEST_F(QueryRunnerTest, LimitWithoutOrderTruncates) {
  QueryPlan plan;
  plan.table = "sales";
  plan.limit = 5;
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 5u);
}

TEST_F(QueryRunnerTest, UnknownTablesError) {
  QueryPlan plan;
  plan.table = "missing";
  EXPECT_TRUE(RunPlan(plan, catalog_, MakeScan(), nullptr).status()
                  .IsNotFound());
  plan.table = "sales";
  plan.has_join = true;
  plan.join_table = "nope";
  EXPECT_TRUE(RunPlan(plan, catalog_, MakeScan(), nullptr).status()
                  .IsNotFound());
}

TEST_F(QueryRunnerTest, PlanOutputSchemaMatchesResult) {
  QueryPlan plan;
  plan.table = "sales";
  plan.group_by = {1};
  plan.aggs = {AggSpec::Avg(3, "avg_price"), AggSpec::Max(2, "max_qty")};
  auto schema = PlanOutputSchema(plan, catalog_);
  ASSERT_TRUE(schema.ok());
  auto res = RunPlan(plan, catalog_, MakeScan(), nullptr);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(schema->num_columns(), res->schema.num_columns());
  for (size_t i = 0; i < schema->num_columns(); ++i) {
    EXPECT_EQ(schema->column(i).name, res->schema.column(i).name);
    EXPECT_EQ(schema->column(i).type, res->schema.column(i).type);
  }
  // MAX over an INT64 column keeps its input type; AVG is DOUBLE.
  EXPECT_EQ(schema->column(1).type, Type::kDouble);
  EXPECT_EQ(schema->column(2).type, Type::kInt64);
}

}  // namespace
}  // namespace htap
