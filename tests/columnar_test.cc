// Columnar store tests: encodings round-trip (property, all encodings x
// value shapes), zone maps and skipping, row groups, delete bitmaps,
// key index, compaction.

#include <gtest/gtest.h>

#include "columnar/column_table.h"
#include "common/random.h"

namespace htap {
namespace {

ColumnVector MakeInts(std::initializer_list<int64_t> vals) {
  ColumnVector v(Type::kInt64);
  for (int64_t x : vals) v.AppendInt64(x);
  return v;
}

TEST(EncodingTest, PlainRoundTripAllTypes) {
  ColumnVector ints(Type::kInt64);
  ints.AppendInt64(1);
  ints.AppendNull();
  ints.AppendInt64(-5);
  ColumnVector strs(Type::kString);
  strs.AppendString("a");
  strs.AppendString("bb");
  strs.AppendNull();
  ColumnVector dbls(Type::kDouble);
  dbls.AppendDouble(1.5);
  dbls.AppendDouble(-2.25);

  for (const ColumnVector* v : {&ints, &strs, &dbls}) {
    const ColumnVector out = Decode(Encode(*v, EncodingType::kPlain));
    ASSERT_EQ(out.size(), v->size());
    for (size_t i = 0; i < v->size(); ++i)
      EXPECT_EQ(out.GetValue(i), v->GetValue(i));
  }
}

TEST(EncodingTest, DictionaryCompressesLowCardinality) {
  ColumnVector v(Type::kString);
  for (int i = 0; i < 1000; ++i) v.AppendString(i % 4 == 0 ? "red" : "blue");
  const EncodedColumn enc = Encode(v, EncodingType::kDictionary);
  EXPECT_EQ(enc.strings.size(), 2u);  // the dictionary
  EXPECT_LT(enc.MemoryBytes(), v.MemoryBytes());
  const ColumnVector out = Decode(enc);
  for (size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(out.GetString(i), v.GetString(i));
}

TEST(EncodingTest, RleCompressesRuns) {
  ColumnVector v(Type::kInt64);
  for (int run = 0; run < 10; ++run)
    for (int i = 0; i < 100; ++i) v.AppendInt64(run);
  const EncodedColumn enc = Encode(v, EncodingType::kRle);
  EXPECT_EQ(enc.ints.size(), 10u);
  EXPECT_EQ(enc.run_ends.back(), 1000u);
  // Random access through the run index.
  EXPECT_EQ(EncodedGet(enc, 0).AsInt64(), 0);
  EXPECT_EQ(EncodedGet(enc, 99).AsInt64(), 0);
  EXPECT_EQ(EncodedGet(enc, 100).AsInt64(), 1);
  EXPECT_EQ(EncodedGet(enc, 999).AsInt64(), 9);
}

TEST(EncodingTest, ForBitPackNarrowRange) {
  ColumnVector v(Type::kInt64);
  Random rng(5);
  for (int i = 0; i < 500; ++i)
    v.AppendInt64(1000000 + static_cast<int64_t>(rng.Uniform(100)));
  const EncodedColumn enc = Encode(v, EncodingType::kForBitPack);
  ASSERT_EQ(enc.encoding, EncodingType::kForBitPack);
  EXPECT_LE(enc.bit_width, 7);
  EXPECT_LT(enc.packed.size() * 8, 500u * 8);  // packed smaller than plain
  const ColumnVector out = Decode(enc);
  for (size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(out.GetInt64(i), v.GetInt64(i));
}

TEST(EncodingTest, ForBitPackFallsBackOnWideRange) {
  ColumnVector v(Type::kInt64);
  v.AppendInt64(std::numeric_limits<int64_t>::min());
  v.AppendInt64(std::numeric_limits<int64_t>::max());
  const EncodedColumn enc = Encode(v, EncodingType::kForBitPack);
  EXPECT_EQ(enc.encoding, EncodingType::kPlain);
  EXPECT_EQ(EncodedGet(enc, 0).AsInt64(), std::numeric_limits<int64_t>::min());
}

TEST(EncodingTest, ChooseEncodingHeuristics) {
  // Long runs -> RLE.
  ColumnVector runs(Type::kInt64);
  for (int i = 0; i < 256; ++i) runs.AppendInt64(i / 64);
  EXPECT_EQ(ChooseEncoding(runs), EncodingType::kRle);
  // Low-cardinality strings -> dictionary.
  ColumnVector lowcard(Type::kString);
  Random rng(3);
  for (int i = 0; i < 256; ++i)
    lowcard.AppendString("v" + std::to_string(rng.Uniform(5)));
  EXPECT_EQ(ChooseEncoding(lowcard), EncodingType::kDictionary);
  // Narrow-range ints -> FOR bit-pack.
  ColumnVector narrow(Type::kInt64);
  for (int i = 0; i < 256; ++i)
    narrow.AppendInt64(static_cast<int64_t>(rng.Uniform(1000)));
  EXPECT_EQ(ChooseEncoding(narrow), EncodingType::kForBitPack);
}

// Property: encode∘decode == identity for every encoding on randomized data
// (with nulls), parameterized over encoding type.
class EncodingRoundTripTest
    : public ::testing::TestWithParam<EncodingType> {};

TEST_P(EncodingRoundTripTest, RandomIntsWithNulls) {
  Random rng(static_cast<uint64_t>(GetParam()) + 100);
  ColumnVector v(Type::kInt64);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.05))
      v.AppendNull();
    else
      v.AppendInt64(static_cast<int64_t>(rng.Uniform(500)));
  }
  const EncodedColumn enc = Encode(v, GetParam());
  const ColumnVector out = Decode(enc);
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(out.IsNull(i), v.IsNull(i)) << i;
    EXPECT_EQ(out.GetValue(i), v.GetValue(i)) << i;
    EXPECT_EQ(EncodedGet(enc, i), v.GetValue(i)) << i;
  }
}

TEST_P(EncodingRoundTripTest, RandomStrings) {
  if (GetParam() == EncodingType::kForBitPack) GTEST_SKIP();
  Random rng(static_cast<uint64_t>(GetParam()) + 200);
  ColumnVector v(Type::kString);
  for (int i = 0; i < 1000; ++i)
    v.AppendString("s" + std::to_string(rng.Uniform(30)));
  const ColumnVector out = Decode(Encode(v, GetParam()));
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(out.GetString(i), v.GetString(i));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingRoundTripTest,
                         ::testing::Values(EncodingType::kPlain,
                                           EncodingType::kDictionary,
                                           EncodingType::kRle,
                                           EncodingType::kForBitPack));

TEST(SegmentTest, ZoneMapMinMax) {
  const Segment s = Segment::Build(MakeInts({5, 2, 9, 7}));
  EXPECT_EQ(s.min().AsInt64(), 2);
  EXPECT_EQ(s.max().AsInt64(), 9);
  EXPECT_FALSE(s.has_nulls());
}

TEST(SegmentTest, CanSkipSemantics) {
  const Segment s = Segment::Build(MakeInts({10, 20, 30}));
  EXPECT_TRUE(s.CanSkip("=", Value(int64_t{5})));
  EXPECT_FALSE(s.CanSkip("=", Value(int64_t{20})));
  EXPECT_TRUE(s.CanSkip("<", Value(int64_t{10})));   // nothing below min
  EXPECT_FALSE(s.CanSkip("<", Value(int64_t{11})));
  EXPECT_TRUE(s.CanSkip(">", Value(int64_t{30})));   // nothing above max
  EXPECT_FALSE(s.CanSkip(">", Value(int64_t{29})));
  EXPECT_TRUE(s.CanSkip(">=", Value(int64_t{31})));
  EXPECT_TRUE(s.CanSkip("<=", Value(int64_t{9})));
  EXPECT_FALSE(s.CanSkip("!=", Value(int64_t{20})));  // never skippable
}

TEST(SegmentTest, AllNullSegmentSkipsEverything) {
  ColumnVector v(Type::kInt64);
  v.AppendNull();
  v.AppendNull();
  const Segment s = Segment::Build(v);
  EXPECT_TRUE(s.CanSkip("=", Value(int64_t{0})));
  EXPECT_TRUE(s.has_nulls());
}

Schema TableSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"s", Type::kString}});
}

Row TRow(Key id, int64_t v, const std::string& s = "x") {
  return Row{Value(id), Value(v), Value(s)};
}

TEST(ColumnTableTest, AppendAndMaterialize) {
  ColumnTable t(TableSchema());
  t.AppendBatch({TRow(1, 10), TRow(2, 20)}, 5);
  EXPECT_EQ(t.num_groups(), 1u);
  EXPECT_EQ(t.live_rows(), 2u);
  EXPECT_EQ(t.merged_csn(), 5u);
  const RowGroup* g = t.group(0);
  EXPECT_EQ(t.MaterializeRow(*g, 1), TRow(2, 20));
}

TEST(ColumnTableTest, UpsertDeleteMarksOldPosition) {
  ColumnTable t(TableSchema());
  t.AppendBatch({TRow(1, 10), TRow(2, 20)}, 1);
  t.AppendBatch({TRow(1, 11)}, 2);  // update of key 1
  EXPECT_EQ(t.live_rows(), 2u);
  size_t gi, off;
  ASSERT_TRUE(t.FindKey(1, &gi, &off));
  EXPECT_EQ(gi, 1u);  // newest position wins
  EXPECT_EQ(t.MaterializeRow(*t.group(gi), off).Get(1).AsInt64(), 11);
}

TEST(ColumnTableTest, DeleteKey) {
  ColumnTable t(TableSchema());
  t.AppendBatch({TRow(1, 10), TRow(2, 20)}, 1);
  EXPECT_TRUE(t.DeleteKey(1, 2));
  EXPECT_FALSE(t.DeleteKey(99, 3));
  EXPECT_EQ(t.live_rows(), 1u);
  size_t gi, off;
  EXPECT_FALSE(t.FindKey(1, &gi, &off));
}

TEST(ColumnTableTest, CompactDropsDeletedRows) {
  ColumnTable t(TableSchema());
  for (int b = 0; b < 5; ++b) {
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) rows.push_back(TRow(b * 100 + i, i));
    t.AppendBatch(rows, static_cast<CSN>(b + 1));
  }
  for (Key k = 0; k < 500; k += 2) t.DeleteKey(k, 10);
  EXPECT_EQ(t.live_rows(), 250u);
  t.Compact();
  EXPECT_EQ(t.num_groups(), 1u);
  EXPECT_EQ(t.live_rows(), 250u);
  size_t gi, off;
  EXPECT_TRUE(t.FindKey(1, &gi, &off));
  EXPECT_FALSE(t.FindKey(2, &gi, &off));
}

TEST(ColumnTableTest, ClearResetsEverything) {
  ColumnTable t(TableSchema());
  t.AppendBatch({TRow(1, 1)}, 9);
  t.Clear();
  EXPECT_EQ(t.num_groups(), 0u);
  EXPECT_EQ(t.live_rows(), 0u);
  EXPECT_EQ(t.merged_csn(), 0u);
}

TEST(ColumnTableTest, SegmentsGetCompressedEncodings) {
  ColumnTable t(TableSchema());
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i)
    rows.push_back(TRow(i, i / 100, "tag" + std::to_string(i % 3)));
  t.AppendBatch(rows, 1);
  const RowGroup* g = t.group(0);
  // v has long runs -> RLE; s has 3 distinct values -> dictionary.
  EXPECT_EQ(g->columns[1].encoding(), EncodingType::kRle);
  EXPECT_EQ(g->columns[2].encoding(), EncodingType::kDictionary);
}

}  // namespace
}  // namespace htap
