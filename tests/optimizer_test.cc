// Optimizer tests: statistics, selectivity estimation (including where the
// uniformity assumption breaks — the survey's learned-optimizer motivation),
// hybrid access-path choice, and the column advisor.

#include <gtest/gtest.h>

#include "common/random.h"
#include "opt/column_advisor.h"
#include "opt/optimizer.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"s", Type::kString}});
}

std::vector<Row> UniformRows(size_t n) {
  std::vector<Row> rows;
  Random rng(1);
  for (size_t i = 0; i < n; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>(i)),
                       Value(static_cast<int64_t>(rng.Uniform(100))),
                       Value("s" + std::to_string(rng.Uniform(10)))});
  return rows;
}

TEST(TableStatsTest, ComputesShape) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  EXPECT_EQ(stats.row_count, 1000u);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].min.AsInt64(), 0);
  EXPECT_EQ(stats.columns[0].max.AsInt64(), 999);
  EXPECT_NEAR(stats.columns[0].ndv, 1000, 1);
  EXPECT_NEAR(stats.columns[1].ndv, 100, 5);
  EXPECT_NEAR(stats.columns[2].ndv, 10, 1);
}

TEST(SelectivityTest, EqualityUsesNdv) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  const double sel =
      EstimateSelectivity(Predicate::Eq(1, Value(int64_t{5})), stats);
  EXPECT_NEAR(sel, 0.01, 0.002);
}

TEST(SelectivityTest, RangeInterpolates) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  // id < 250 over [0, 999]: about a quarter.
  const double sel =
      EstimateSelectivity(Predicate::Lt(0, Value(int64_t{250})), stats);
  EXPECT_NEAR(sel, 0.25, 0.01);
  const double sel_hi =
      EstimateSelectivity(Predicate::Ge(0, Value(int64_t{900})), stats);
  EXPECT_NEAR(sel_hi, 0.1, 0.01);
}

TEST(SelectivityTest, ConjunctionAssumesIndependence) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  const auto p = Predicate::And({Predicate::Lt(0, Value(int64_t{500})),
                                 Predicate::Eq(1, Value(int64_t{7}))});
  EXPECT_NEAR(EstimateSelectivity(p, stats), 0.5 * 0.01, 0.005);
}

TEST(SelectivityTest, MisestimatesCorrelatedData) {
  // v == id % 100: perfectly correlated with id. The conjunction
  // (id < 100 AND v = id) has true selectivity 0.001 but the independence
  // assumption predicts 0.1 * 0.01 — this documented failure is the
  // survey's "learned HTAP optimizer" open problem.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1000; ++i)
    rows.push_back(Row{Value(i), Value(i % 100), Value("x")});
  const auto stats = TableStats::Compute(TestSchema(), rows);
  const auto p = Predicate::And({Predicate::Lt(0, Value(int64_t{100})),
                                 Predicate::Eq(1, Value(int64_t{42}))});
  const double est = EstimateSelectivity(p, stats);
  const double truth = 1.0 / 1000.0;
  EXPECT_GT(est / truth, 0.5);  // it IS off; assert the direction and size
  EXPECT_NEAR(est, 0.1 * 0.01, 0.005);
}

TEST(AccessPathTest, PointLookupPrefersIndex) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::Eq(0, Value(int64_t{7}));
  q.pred = &pred;
  q.columns_needed = 3;
  q.total_columns = 3;
  q.pk_point_lookup = true;
  const auto choice = ChooseAccessPath(CostModel{}, q);
  EXPECT_EQ(choice.path, AccessPath::kRowIndexLookup);
}

TEST(AccessPathTest, WideAnalyticalScanPrefersColumns) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  stats.row_count = 1000000;
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::Gt(1, Value(int64_t{50}));
  q.pred = &pred;
  q.columns_needed = 1;  // touches 1 of 20 columns
  q.total_columns = 20;
  const auto choice = ChooseAccessPath(CostModel{}, q);
  EXPECT_EQ(choice.path, AccessPath::kColumnScan);
  EXPECT_LT(choice.cost, 1000000.0 * 1.0);  // cheaper than the row scan
}

TEST(AccessPathTest, ColumnUnavailableFallsBackToRows) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(100));
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::True();
  q.pred = &pred;
  q.columns_needed = 1;
  q.total_columns = 3;
  q.column_store_available = false;
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kRowFullScan);
}

TEST(AccessPathTest, HugeDeltaPenalizesColumnScan) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(100));
  stats.row_count = 1000;
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::True();
  q.pred = &pred;
  q.columns_needed = 1;
  q.total_columns = 3;
  q.delta_entries = 0;
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kColumnScan);
  q.delta_entries = 1000000;  // unmerged backlog makes the union expensive
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kRowFullScan);
}

TEST(ColumnAdvisorTest, SelectsHotColumnsUnderBudget) {
  ColumnAdvisor advisor;
  // Columns 1 and 3 are hot; all columns cost 100 bytes.
  for (int i = 0; i < 50; ++i) advisor.RecordAccess("t", {1, 3});
  advisor.RecordAccess("t", {0});
  const auto sel = advisor.Advise("t", {100, 100, 100, 100}, 250);
  // Budget fits the two hot columns; the barely-touched column 0 misses out.
  EXPECT_EQ(sel.columns, (std::vector<int>{1, 3}));
  EXPECT_EQ(sel.bytes_used, 200u);
}

TEST(ColumnAdvisorTest, BudgetExcludesExpensiveColdColumns) {
  ColumnAdvisor advisor;
  for (int i = 0; i < 50; ++i) advisor.RecordAccess("t", {1});
  advisor.RecordAccess("t", {2});
  // Column 2 is huge and barely used: it must not evict the hot column.
  const auto sel = advisor.Advise("t", {10, 10, 1000}, 100);
  EXPECT_EQ(sel.columns, (std::vector<int>{1}));
  EXPECT_GT(sel.heat_covered, 0.9);
}

TEST(ColumnAdvisorTest, ColdColumnsNeverSelected) {
  ColumnAdvisor advisor;
  advisor.RecordAccess("t", {0});
  const auto sel = advisor.Advise("t", {10, 10, 10}, 1000);
  EXPECT_EQ(sel.columns, (std::vector<int>{0}));
}

TEST(ColumnAdvisorTest, DecayFollowsWorkloadDrift) {
  ColumnAdvisor advisor(/*decay=*/0.1);
  for (int i = 0; i < 100; ++i) advisor.RecordAccess("t", {0});
  for (int i = 0; i < 5; ++i) advisor.Decay();
  for (int i = 0; i < 10; ++i) advisor.RecordAccess("t", {1});
  const auto heat = advisor.Heat("t");
  EXPECT_GT(heat[1], heat[0]);  // recent column 1 beats decayed column 0
}

TEST(ColumnAdvisorTest, EstimateColumnBytesScalesWithWidthAndRows) {
  auto stats = TableStats::Compute(
      TestSchema(), {Row{Value(int64_t{1}), Value(int64_t{2}),
                         Value(std::string(100, 'x'))}});
  stats.row_count = 1000;
  const auto bytes = EstimateColumnBytes(TestSchema(), stats);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_GT(bytes[2], bytes[0] * 5);  // the wide string column dominates
}

}  // namespace
}  // namespace htap
