// Optimizer tests: statistics, selectivity estimation (including where the
// uniformity assumption breaks — the survey's learned-optimizer motivation),
// hybrid access-path choice, and the column advisor.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/query_runner.h"
#include "opt/column_advisor.h"
#include "opt/optimizer.h"
#include "opt/stats_builder.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"s", Type::kString}});
}

std::vector<Row> UniformRows(size_t n) {
  std::vector<Row> rows;
  Random rng(1);
  for (size_t i = 0; i < n; ++i)
    rows.push_back(Row{Value(static_cast<int64_t>(i)),
                       Value(static_cast<int64_t>(rng.Uniform(100))),
                       Value("s" + std::to_string(rng.Uniform(10)))});
  return rows;
}

TEST(TableStatsTest, ComputesShape) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  EXPECT_EQ(stats.row_count, 1000u);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].min.AsInt64(), 0);
  EXPECT_EQ(stats.columns[0].max.AsInt64(), 999);
  EXPECT_NEAR(stats.columns[0].ndv, 1000, 1);
  EXPECT_NEAR(stats.columns[1].ndv, 100, 5);
  EXPECT_NEAR(stats.columns[2].ndv, 10, 1);
}

TEST(SelectivityTest, EqualityUsesNdv) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  const double sel =
      EstimateSelectivity(Predicate::Eq(1, Value(int64_t{5})), stats);
  EXPECT_NEAR(sel, 0.01, 0.002);
}

TEST(SelectivityTest, RangeInterpolates) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  // id < 250 over [0, 999]: about a quarter.
  const double sel =
      EstimateSelectivity(Predicate::Lt(0, Value(int64_t{250})), stats);
  EXPECT_NEAR(sel, 0.25, 0.01);
  const double sel_hi =
      EstimateSelectivity(Predicate::Ge(0, Value(int64_t{900})), stats);
  EXPECT_NEAR(sel_hi, 0.1, 0.01);
}

TEST(SelectivityTest, ConjunctionAssumesIndependence) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  const auto p = Predicate::And({Predicate::Lt(0, Value(int64_t{500})),
                                 Predicate::Eq(1, Value(int64_t{7}))});
  EXPECT_NEAR(EstimateSelectivity(p, stats), 0.5 * 0.01, 0.005);
}

TEST(SelectivityTest, MisestimatesCorrelatedData) {
  // v == id % 100: perfectly correlated with id. The conjunction
  // (id < 100 AND v = id) has true selectivity 0.001 but the independence
  // assumption predicts 0.1 * 0.01 — this documented failure is the
  // survey's "learned HTAP optimizer" open problem.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1000; ++i)
    rows.push_back(Row{Value(i), Value(i % 100), Value("x")});
  const auto stats = TableStats::Compute(TestSchema(), rows);
  const auto p = Predicate::And({Predicate::Lt(0, Value(int64_t{100})),
                                 Predicate::Eq(1, Value(int64_t{42}))});
  const double est = EstimateSelectivity(p, stats);
  const double truth = 1.0 / 1000.0;
  EXPECT_GT(est / truth, 0.5);  // it IS off; assert the direction and size
  EXPECT_NEAR(est, 0.1 * 0.01, 0.005);
}

TEST(AccessPathTest, PointLookupPrefersIndex) {
  const auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::Eq(0, Value(int64_t{7}));
  q.pred = &pred;
  q.columns_needed = 3;
  q.total_columns = 3;
  q.pk_point_lookup = true;
  const auto choice = ChooseAccessPath(CostModel{}, q);
  EXPECT_EQ(choice.path, AccessPath::kRowIndexLookup);
}

TEST(AccessPathTest, WideAnalyticalScanPrefersColumns) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(1000));
  stats.row_count = 1000000;
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::Gt(1, Value(int64_t{50}));
  q.pred = &pred;
  q.columns_needed = 1;  // touches 1 of 20 columns
  q.total_columns = 20;
  const auto choice = ChooseAccessPath(CostModel{}, q);
  EXPECT_EQ(choice.path, AccessPath::kColumnScan);
  EXPECT_LT(choice.cost, 1000000.0 * 1.0);  // cheaper than the row scan
}

TEST(AccessPathTest, ColumnUnavailableFallsBackToRows) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(100));
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::True();
  q.pred = &pred;
  q.columns_needed = 1;
  q.total_columns = 3;
  q.column_store_available = false;
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kRowFullScan);
}

TEST(AccessPathTest, HugeDeltaPenalizesColumnScan) {
  auto stats = TableStats::Compute(TestSchema(), UniformRows(100));
  stats.row_count = 1000;
  AccessQuery q;
  q.stats = &stats;
  auto pred = Predicate::True();
  q.pred = &pred;
  q.columns_needed = 1;
  q.total_columns = 3;
  q.delta_entries = 0;
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kColumnScan);
  q.delta_entries = 1000000;  // unmerged backlog makes the union expensive
  EXPECT_EQ(ChooseAccessPath(CostModel{}, q).path, AccessPath::kRowFullScan);
}

TEST(ColumnAdvisorTest, SelectsHotColumnsUnderBudget) {
  ColumnAdvisor advisor;
  // Columns 1 and 3 are hot; all columns cost 100 bytes.
  for (int i = 0; i < 50; ++i) advisor.RecordAccess("t", {1, 3});
  advisor.RecordAccess("t", {0});
  const auto sel = advisor.Advise("t", {100, 100, 100, 100}, 250);
  // Budget fits the two hot columns; the barely-touched column 0 misses out.
  EXPECT_EQ(sel.columns, (std::vector<int>{1, 3}));
  EXPECT_EQ(sel.bytes_used, 200u);
}

TEST(ColumnAdvisorTest, BudgetExcludesExpensiveColdColumns) {
  ColumnAdvisor advisor;
  for (int i = 0; i < 50; ++i) advisor.RecordAccess("t", {1});
  advisor.RecordAccess("t", {2});
  // Column 2 is huge and barely used: it must not evict the hot column.
  const auto sel = advisor.Advise("t", {10, 10, 1000}, 100);
  EXPECT_EQ(sel.columns, (std::vector<int>{1}));
  EXPECT_GT(sel.heat_covered, 0.9);
}

TEST(ColumnAdvisorTest, ColdColumnsNeverSelected) {
  ColumnAdvisor advisor;
  advisor.RecordAccess("t", {0});
  const auto sel = advisor.Advise("t", {10, 10, 10}, 1000);
  EXPECT_EQ(sel.columns, (std::vector<int>{0}));
}

TEST(ColumnAdvisorTest, DecayFollowsWorkloadDrift) {
  ColumnAdvisor advisor(/*decay=*/0.1);
  for (int i = 0; i < 100; ++i) advisor.RecordAccess("t", {0});
  for (int i = 0; i < 5; ++i) advisor.Decay();
  for (int i = 0; i < 10; ++i) advisor.RecordAccess("t", {1});
  const auto heat = advisor.Heat("t");
  EXPECT_GT(heat[1], heat[0]);  // recent column 1 beats decayed column 0
}

TEST(ColumnAdvisorTest, EstimateColumnBytesScalesWithWidthAndRows) {
  auto stats = TableStats::Compute(
      TestSchema(), {Row{Value(int64_t{1}), Value(int64_t{2}),
                         Value(std::string(100, 'x'))}});
  stats.row_count = 1000;
  const auto bytes = EstimateColumnBytes(TestSchema(), stats);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_GT(bytes[2], bytes[0] * 5);  // the wide string column dominates
}

// ---- Incremental statistics (stats_builder) ------------------------------

TEST(KmvSketchTest, ExactBelowKApproximateAbove) {
  KmvSketch small(256);
  for (int64_t i = 0; i < 100; ++i) small.Add(Value(i).Hash());
  EXPECT_DOUBLE_EQ(small.Estimate(), 100.0);
  // Re-adding the same hashes is idempotent.
  for (int64_t i = 0; i < 100; ++i) small.Add(Value(i).Hash());
  EXPECT_DOUBLE_EQ(small.Estimate(), 100.0);

  KmvSketch big(256);
  for (int64_t i = 0; i < 100000; ++i) big.Add(Value(i).Hash());
  EXPECT_NEAR(big.Estimate(), 100000.0, 100000.0 * 0.15);

  big.Reset();
  EXPECT_DOUBLE_EQ(big.Estimate(), 0.0);
}

TEST(TableStatsBuilderTest, IncrementalMatchesBatchCompute) {
  const auto rows = UniformRows(1000);
  const auto batch = TableStats::Compute(TestSchema(), rows);

  TableStatsBuilder builder(3);
  for (const Row& r : rows) builder.AddRow(r);
  const TableStats inc = builder.Snapshot(rows.size());

  EXPECT_EQ(inc.row_count, batch.row_count);
  ASSERT_EQ(inc.columns.size(), 3u);
  EXPECT_EQ(inc.columns[0].min.AsInt64(), batch.columns[0].min.AsInt64());
  EXPECT_EQ(inc.columns[0].max.AsInt64(), batch.columns[0].max.AsInt64());
  EXPECT_NEAR(inc.columns[0].ndv, batch.columns[0].ndv, 100);
  EXPECT_NEAR(inc.columns[1].ndv, 100, 5);
  EXPECT_NEAR(inc.columns[2].ndv, 10, 1);
}

TEST(TableStatsBuilderTest, DeletesAccumulateDriftUntilRecompute) {
  TableStatsBuilder builder(3);
  std::vector<DeltaEntry> entries;
  for (int64_t i = 0; i < 10; ++i) {
    DeltaEntry e;
    e.op = ChangeOp::kInsert;
    e.key = i;
    e.row = Row{Value(i), Value(i % 3), Value("x")};
    entries.push_back(std::move(e));
  }
  DeltaEntry del;
  del.op = ChangeOp::kDelete;
  del.key = 3;
  entries.push_back(std::move(del));
  builder.ApplyEntries(entries);

  EXPECT_EQ(builder.deletes_since_recompute(), 1u);
  // Deletes cannot shrink incremental estimates: bounds still span all
  // upserts.
  const TableStats st = builder.Snapshot(9);
  EXPECT_EQ(st.columns[0].min.AsInt64(), 0);
  EXPECT_EQ(st.columns[0].max.AsInt64(), 9);

  builder.RecomputeFromRows({Row{Value(int64_t{5}), Value(int64_t{1}),
                                 Value("y")}});
  EXPECT_EQ(builder.deletes_since_recompute(), 0u);
  const TableStats st2 = builder.Snapshot(1);
  EXPECT_EQ(st2.columns[0].min.AsInt64(), 5);
  EXPECT_EQ(st2.columns[0].max.AsInt64(), 5);
}

TEST(CatalogStatsTest, PublishVersionsAndMissingLookup) {
  Catalog catalog;
  EXPECT_FALSE(catalog.GetStats("t", nullptr));

  TableStats st;
  st.row_count = 10;
  catalog.PublishStats("t", st, /*as_of_csn=*/5);
  PublishedTableStats p;
  ASSERT_TRUE(catalog.GetStats("t", &p));
  EXPECT_EQ(p.stats.row_count, 10u);
  EXPECT_EQ(p.as_of_csn, 5u);
  EXPECT_EQ(p.version, 1u);

  st.row_count = 20;
  catalog.PublishStats("t", st, /*as_of_csn=*/9);
  ASSERT_TRUE(catalog.GetStats("t", &p));
  EXPECT_EQ(p.stats.row_count, 20u);
  EXPECT_EQ(p.version, 2u);
}

// ---- Plan-time join ordering (zero extra scans) --------------------------

/// Harness for multi-join RunPlan tests: three tables whose actual sizes
/// disagree with the published statistics, so the chosen join order reveals
/// which source the planner consulted.
class PlanTimeJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable("fact", Schema({{"f_id", Type::kInt64},
                                              {"f_a", Type::kInt64},
                                              {"f_b", Type::kInt64}}),
                              nullptr)
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable("dim_a", Schema({{"a_id", Type::kInt64},
                                               {"a_val", Type::kInt64}}),
                              nullptr)
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable("dim_b", Schema({{"b_id", Type::kInt64},
                                               {"b_val", Type::kInt64}}),
                              nullptr)
                    .ok());
    // Actual contents: dim_a tiny (2 rows), dim_b bigger (50 rows). The
    // exact-count fallback therefore joins dim_a first (tie on estimate 20,
    // lowest clause index wins... see estimates below) while lying stats
    // say dim_b first.
    for (int64_t i = 0; i < 20; ++i)
      data_["fact"].push_back(
          Row{Value(i), Value(1 + i % 2), Value(1 + i % 50)});
    for (int64_t i = 1; i <= 2; ++i)
      data_["dim_a"].push_back(Row{Value(i), Value(i * 100)});
    for (int64_t i = 1; i <= 50; ++i)
      data_["dim_b"].push_back(Row{Value(i), Value(i * 10)});

    plan_.table = "fact";
    JoinClause ja;
    ja.table = "dim_a";
    ja.left_col = 1;   // f_a
    ja.right_col = 0;  // a_id
    JoinClause jb;
    jb.table = "dim_b";
    jb.left_col = 2;   // f_b
    jb.right_col = 0;  // b_id
    plan_.joins = {ja, jb};
  }

  /// Publishes deliberately wrong stats: dim_a looks huge with few distinct
  /// keys (est 20 * 1000 / 10 = 2000 rows) and dim_b looks cheap
  /// (est 20 * 100 / 100 = 20 rows), so the stats-driven greedy order is
  /// [dim_b, dim_a] = clause order [1, 0]. The exact counts over the real
  /// data estimate 20 rows for both and tie-break to [0, 1].
  void PublishLyingStats(CSN as_of) {
    TableStats fact;
    fact.row_count = 20;
    fact.columns.resize(3);
    catalog_.PublishStats("fact", fact, as_of);

    TableStats dim_a;
    dim_a.row_count = 1000;
    dim_a.columns.resize(2);
    dim_a.columns[0].ndv = 10;
    catalog_.PublishStats("dim_a", dim_a, as_of);

    TableStats dim_b;
    dim_b.row_count = 100;
    dim_b.columns.resize(2);
    dim_b.columns[0].ndv = 100;
    catalog_.PublishStats("dim_b", dim_b, as_of);
  }

  ScanFn CountingScan() {
    return [this](const ScanRequest& req, ScanStats*,
                  std::string*) -> Result<std::vector<Row>> {
      ++scan_calls_[req.table->name];
      scan_sequence_.push_back(req.table->name);
      std::vector<Row> out;
      for (const Row& r : data_[req.table->name]) {
        if (!req.pred->Eval(r)) continue;
        if (req.projection.empty()) {
          out.push_back(r);
          continue;
        }
        Row proj;
        for (int c : req.projection)
          proj.Append(r.Get(static_cast<size_t>(c)));
        out.push_back(std::move(proj));
      }
      return out;
    };
  }

  Catalog catalog_;
  std::map<std::string, std::vector<Row>> data_;
  std::map<std::string, int> scan_calls_;
  std::vector<std::string> scan_sequence_;
  QueryPlan plan_;
};

TEST_F(PlanTimeJoinTest, FreshStatsOrderJoinsWithoutExtraScans) {
  PublishLyingStats(/*as_of=*/1);
  QueryExecInfo xi;
  ExecContext exec;
  exec.committed_csn = 1;  // stats age 0: fresh
  auto res = RunPlan(plan_, catalog_, CountingScan(), &xi, exec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 20u);

  // The order followed the (deliberately wrong) stats, proving no table was
  // scanned to make the decision — and each table was scanned exactly once,
  // lazily, in execution order.
  EXPECT_TRUE(xi.join_used_catalog_stats);
  EXPECT_EQ(xi.join_stats_age_csns, 0u);
  EXPECT_EQ(xi.join_order, (std::vector<size_t>{1, 0}));
  EXPECT_EQ(scan_calls_["fact"], 1);
  EXPECT_EQ(scan_calls_["dim_a"], 1);
  EXPECT_EQ(scan_calls_["dim_b"], 1);
  EXPECT_EQ(scan_sequence_,
            (std::vector<std::string>{"fact", "dim_b", "dim_a"}));
  ASSERT_EQ(xi.join_est_rows.size(), 2u);
  EXPECT_DOUBLE_EQ(xi.join_est_rows[0], 20.0);    // dim_b step
  EXPECT_DOUBLE_EQ(xi.join_est_rows[1], 2000.0);  // dim_a step
  ASSERT_EQ(xi.join_actual_rows.size(), 2u);
  EXPECT_EQ(xi.join_actual_rows[0], 20u);
  EXPECT_EQ(xi.join_actual_rows[1], 20u);
}

TEST_F(PlanTimeJoinTest, StaleStatsFallBackToExactCounts) {
  PublishLyingStats(/*as_of=*/1);
  QueryExecInfo xi;
  ExecContext exec;
  exec.committed_csn = 1 + exec.stats_staleness_csns + 1;  // too old
  auto res = RunPlan(plan_, catalog_, CountingScan(), &xi, exec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 20u);

  // Fallback: exact counts over the real data (both steps estimate 20,
  // tie-break to plan order), still one scan per table.
  EXPECT_FALSE(xi.join_used_catalog_stats);
  EXPECT_EQ(xi.join_order, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(scan_calls_["fact"], 1);
  EXPECT_EQ(scan_calls_["dim_a"], 1);
  EXPECT_EQ(scan_calls_["dim_b"], 1);
}

TEST_F(PlanTimeJoinTest, MissingStatsFallBackToExactCounts) {
  // Only two of the three tables ever published: the stats path needs all
  // of them, so the planner falls back.
  TableStats fact;
  fact.row_count = 20;
  fact.columns.resize(3);
  catalog_.PublishStats("fact", fact, 1);
  QueryExecInfo xi;
  auto res = RunPlan(plan_, catalog_, CountingScan(), &xi, ExecContext{});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 20u);
  EXPECT_FALSE(xi.join_used_catalog_stats);
  EXPECT_EQ(xi.join_order, (std::vector<size_t>{0, 1}));
}

TEST_F(PlanTimeJoinTest, StatsAndFallbackOrdersProduceIdenticalRows) {
  // The hidden-index fixup makes the output independent of the chosen
  // order; run both paths and compare byte-for-byte.
  PublishLyingStats(/*as_of=*/1);
  ExecContext fresh;
  fresh.committed_csn = 1;
  auto with_stats = RunPlan(plan_, catalog_, CountingScan(), nullptr, fresh);
  ExecContext stale;
  stale.committed_csn = 1 + stale.stats_staleness_csns + 1;
  auto without = RunPlan(plan_, catalog_, CountingScan(), nullptr, stale);
  ASSERT_TRUE(with_stats.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with_stats->rows.size(), without->rows.size());
  for (size_t i = 0; i < with_stats->rows.size(); ++i)
    EXPECT_EQ(with_stats->rows[i].ToString(), without->rows[i].ToString())
        << "row " << i;
}

}  // namespace
}  // namespace htap
