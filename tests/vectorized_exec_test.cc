// Vectorized execution tests (DESIGN.md §12): compressed-domain predicate
// evaluation must make exactly the scalar Value::Compare decisions on every
// encoding, gather must materialize selections losslessly, and the batch
// pipeline (ScanHtapBatches -> FilterBatch / batch HashAggregate / extracted
// join keys) must be byte-identical to the row-at-a-time operators — serial
// and parallel — plus the compression advisor's size-based encoding picks.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "columnar/compression_advisor.h"
#include "core/database.h"
#include "exec/executor.h"
#include "exec/segment_filter.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64},
                 {"v", Type::kInt64},
                 {"cat", Type::kString},
                 {"price", Type::kDouble}});
}

Row TRow(Key id, int64_t v, const std::string& cat, double price) {
  return Row{Value(id), Value(v), Value(cat), Value(price)};
}

std::vector<uint32_t> AllSel(size_t n) {
  std::vector<uint32_t> sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

// The scalar reference the compressed-domain paths must reproduce exactly.
std::vector<uint32_t> RefFilter(const ColumnVector& v,
                                const std::vector<uint32_t>& sel, CmpOp op,
                                const Value& lit) {
  std::vector<uint32_t> out;
  for (uint32_t i : sel) {
    if (v.IsNull(i) || lit.is_null()) continue;
    if (CmpKeep(v.GetValue(i).Compare(lit), op)) out.push_back(i);
  }
  return out;
}

const CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
const EncodingType kAllEncodings[] = {EncodingType::kPlain,
                                      EncodingType::kDictionary,
                                      EncodingType::kRle,
                                      EncodingType::kForBitPack};

ColumnVector IntShape() {
  ColumnVector v(Type::kInt64);
  for (int i = 0; i < 600; ++i) {
    if (i % 13 == 5)
      v.AppendNull();
    else
      v.AppendInt64((i / 25) % 12);  // runs + narrow range + repeats
  }
  return v;
}

ColumnVector StringShape() {
  ColumnVector v(Type::kString);
  const char* tags[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 400; ++i) {
    if (i % 17 == 2)
      v.AppendNull();
    else
      v.AppendString(tags[(i / 20) % 3]);
  }
  return v;
}

ColumnVector DoubleShape() {
  ColumnVector v(Type::kDouble);
  for (int i = 0; i < 300; ++i) {
    if (i % 11 == 7)
      v.AppendNull();
    else
      v.AppendDouble((i % 40) * 0.25);
  }
  return v;
}

TEST(SegmentFilterTest, MatchesScalarReferenceOnEveryEncoding) {
  struct Case {
    ColumnVector values;
    std::vector<Value> literals;
  };
  std::vector<Case> cases;
  cases.push_back({IntShape(),
                   {Value(int64_t{0}), Value(int64_t{7}), Value(int64_t{99}),
                    Value(4.5), Value(5.0), Value::Null()}});
  cases.push_back({StringShape(),
                   {Value("beta"), Value("aaaa"), Value("zzz"),
                    Value::Null()}});
  cases.push_back({DoubleShape(),
                   {Value(0.25), Value(5.0), Value(-1.0), Value(int64_t{3}),
                    Value::Null()}});
  for (const Case& c : cases) {
    // A partial input selection exercises the refinement contract.
    std::vector<uint32_t> sparse;
    for (size_t i = 0; i < c.values.size(); i += 3)
      sparse.push_back(static_cast<uint32_t>(i));
    for (EncodingType e : kAllEncodings) {
      const Segment seg = Segment::BuildWithEncoding(c.values, e);
      for (CmpOp op : kAllOps) {
        for (const Value& lit : c.literals) {
          SCOPED_TRACE(std::string(EncodingName(e)) + " " + CmpOpName(op) +
                       " " + lit.ToString());
          for (const std::vector<uint32_t>* base :
               {static_cast<const std::vector<uint32_t>*>(&sparse),
                static_cast<const std::vector<uint32_t>*>(nullptr)}) {
            std::vector<uint32_t> sel =
                base != nullptr ? *base : AllSel(c.values.size());
            const std::vector<uint32_t> expect =
                RefFilter(c.values, sel, op, lit);
            FilterSegmentSelection(seg, op, lit, &sel);
            ASSERT_EQ(sel, expect);
            // The zone-map skip test may only claim "skip" when the
            // exhaustive result is empty.
            if (SegmentCanSkip(seg, op, lit)) EXPECT_TRUE(expect.empty());
          }
        }
      }
    }
  }
}

TEST(SegmentFilterTest, GatherMaterializesSelectionLosslessly) {
  const ColumnVector shapes[] = {IntShape(), StringShape(), DoubleShape()};
  for (const ColumnVector& v : shapes) {
    std::vector<uint32_t> sel;
    for (size_t i = 0; i < v.size(); ++i)
      if (i % 3 == 0 || i % 13 == 5) sel.push_back(static_cast<uint32_t>(i));
    for (EncodingType e : kAllEncodings) {
      const Segment seg = Segment::BuildWithEncoding(v, e);
      ColumnVector out(v.type());
      GatherSegment(seg, sel, &out);
      ASSERT_EQ(out.size(), sel.size()) << EncodingName(e);
      for (size_t k = 0; k < sel.size(); ++k)
        ASSERT_EQ(out.GetValue(k), v.GetValue(sel[k]))
            << EncodingName(e) << " pos " << sel[k];
    }
  }
}

TEST(BatchTest, FilterBatchMatchesPredicateEval) {
  ColumnBatch batch;
  batch.columns.emplace_back(IntShape());
  ColumnVector s(Type::kString);
  ColumnVector d(Type::kDouble);
  const char* tags[] = {"x", "y", "z"};
  for (size_t i = 0; i < batch.columns[0].size(); ++i) {
    if (i % 19 == 4)
      s.AppendNull();
    else
      s.AppendString(tags[i % 3]);
    d.AppendDouble(static_cast<double>(i % 50) * 0.5);
  }
  batch.columns.push_back(std::move(s));
  batch.columns.push_back(std::move(d));

  struct F {
    int col;
    CmpOp op;
    Value lit;
  };
  const std::vector<F> filters = {{0, CmpOp::kGe, Value(int64_t{4})},
                                  {1, CmpOp::kEq, Value("y")},
                                  {2, CmpOp::kLt, Value(12.0)},
                                  {1, CmpOp::kNe, Value::Null()}};
  for (const F& f : filters) {
    ColumnBatch b = batch;  // fresh all-active selection each time
    std::vector<uint32_t> expect =
        RefFilter(b.columns[f.col], AllSel(b.rows()), f.op, f.lit);
    FilterBatch(&b, f.col, f.op, f.lit);
    EXPECT_EQ(b.sel, expect);
    EXPECT_EQ(b.active(), expect.size());
  }
  // Chained filters refine the same selection.
  ColumnBatch b = batch;
  FilterBatch(&b, 0, CmpOp::kGe, Value(int64_t{4}));
  FilterBatch(&b, 1, CmpOp::kEq, Value("y"));
  std::vector<uint32_t> expect =
      RefFilter(batch.columns[0], AllSel(batch.rows()), CmpOp::kGe,
                Value(int64_t{4}));
  expect = RefFilter(batch.columns[1], expect, CmpOp::kEq, Value("y"));
  EXPECT_EQ(b.sel, expect);
}

// Shared fixture: a multi-group table with positional deletes and a delta
// carrying updates, a delete, and inserts — the full HTAP union shape.
class VectorizedScanTest : public ::testing::Test {
 protected:
  VectorizedScanTest() : table_(TestSchema()), pool_(4, "vec-ap") {
    std::vector<Row> batch;
    for (Key id = 0; id < 512; ++id) {
      batch.push_back(TRow(id, id % 13, id % 2 ? "odd" : "even", id * 0.25));
      if (batch.size() == 64) {
        table_.AppendBatch(batch, 1);
        batch.clear();
      }
    }
    for (Key id = 7; id < 512; id += 31) table_.DeleteKey(id, 2);
    for (Key id = 3; id < 512; id += 97) {
      DeltaEntry e;
      e.op = ChangeOp::kUpdate;
      e.key = id;
      e.row = TRow(id, 7777, "patched", 1.5);
      e.csn = 10;
      delta_.Append(e);
    }
    DeltaEntry del;
    del.op = ChangeOp::kDelete;
    del.key = 20;
    del.csn = 11;
    delta_.Append(del);
    for (Key id = 9000; id < 9008; ++id) {
      DeltaEntry ins;
      ins.op = ChangeOp::kInsert;
      ins.key = id;
      ins.row = TRow(id, 1, "new", 2.0);
      ins.csn = 12;
      delta_.Append(ins);
    }
  }

  ExecContext Serial(size_t batch_rows = 4096) {
    ExecContext e;
    e.batch_rows = batch_rows;
    return e;
  }
  ExecContext Par(size_t batch_rows = 4096) {
    ExecContext e{&pool_, 4};
    e.batch_rows = batch_rows;
    return e;
  }

  ColumnTable table_;
  InMemoryDeltaStore delta_;
  ThreadPool pool_;
};

TEST_F(VectorizedScanTest, BatchesMatchRowScanByteForByte) {
  const std::vector<Predicate> preds = {
      Predicate::True(),
      Predicate::Ge(0, Value(int64_t{100})),
      Predicate::And({Predicate::Ge(1, Value(int64_t{3})),
                      Predicate::Eq(2, Value("odd"))}),
      Predicate::Eq(2, Value("patched")),
      Predicate::Gt(3, Value(100.0)),
      Predicate::Between(0, Value(int64_t{60}), Value(int64_t{70})),
  };
  for (const Predicate& pred : preds) {
    for (const std::vector<int>& proj :
         {std::vector<int>{}, std::vector<int>{0, 3}, std::vector<int>{2}}) {
      ScanStats row_st;
      const auto rows =
          ScanHtap(table_, &delta_, kMaxCSN - 1, pred, proj, &row_st);
      for (size_t batch_rows : {size_t{4096}, size_t{7}, size_t{0}}) {
        for (bool parallel : {false, true}) {
          SCOPED_TRACE(pred.ToString(nullptr) + " batch_rows=" +
                       std::to_string(batch_rows) +
                       (parallel ? " par" : " ser"));
          ScanStats st;
          const auto batches = ScanHtapBatches(
              table_, &delta_, kMaxCSN - 1, pred, proj,
              parallel ? Par(batch_rows) : Serial(batch_rows), &st);
          EXPECT_EQ(BatchesToRows(batches), rows);
          EXPECT_EQ(TotalActiveRows(batches), rows.size());
          EXPECT_EQ(st.groups_total, row_st.groups_total);
          EXPECT_EQ(st.groups_skipped, row_st.groups_skipped);
          EXPECT_EQ(st.main_rows_emitted, row_st.main_rows_emitted);
          EXPECT_EQ(st.delta_rows_emitted, row_st.delta_rows_emitted);
          if (batch_rows != 0) {
            for (const ColumnBatch& b : batches)
              EXPECT_LE(b.rows(), batch_rows);
          }
        }
      }
    }
  }
}

// Satellite of the typed-filter work: int64 and string columns must take
// the same decisions as generic row-at-a-time Predicate::Eval (the double
// fast path has this coverage in parallel_scan_test).
TEST_F(VectorizedScanTest, Int64AndStringFastPathsMatchGenericEval) {
  const std::vector<Predicate> preds = {
      Predicate::Lt(1, Value(int64_t{4})), Predicate::Ge(0, Value(int64_t{400})),
      Predicate::Eq(1, Value(int64_t{0})), Predicate::Ne(1, Value(int64_t{7})),
      Predicate::Gt(1, Value(2.5)),  // double literal vs int column
      Predicate::Eq(2, Value("odd")), Predicate::Ne(2, Value("even")),
      Predicate::Lt(2, Value("f")),  Predicate::Ge(2, Value("odd")),
  };
  const auto all =
      ScanHtap(table_, &delta_, kMaxCSN - 1, Predicate::True(), {});
  for (const Predicate& pred : preds) {
    std::vector<Row> expect;
    for (const Row& r : all)
      if (pred.Eval(r)) expect.push_back(r);
    EXPECT_EQ(ScanHtap(table_, &delta_, kMaxCSN - 1, pred, {}), expect)
        << pred.ToString(nullptr);
    EXPECT_EQ(BatchesToRows(ScanHtapBatches(table_, &delta_, kMaxCSN - 1,
                                            pred, {}, Serial())),
              expect)
        << pred.ToString(nullptr);
  }
}

TEST_F(VectorizedScanTest, BatchAggregateMatchesRowAggregate) {
  const auto batches = ScanHtapBatches(table_, &delta_, kMaxCSN - 1,
                                       Predicate::True(), {}, Serial(100));
  const auto rows = BatchesToRows(batches);
  const std::vector<AggSpec> aggs = {
      AggSpec::Count("n"), AggSpec::Sum(1, "s"), AggSpec::Min(3, "mn"),
      AggSpec::Max(3, "mx"), AggSpec::Avg(1, "avg")};
  auto less = [](const Row& a, const Row& b) {
    return a.ToString() < b.ToString();
  };
  for (const std::vector<int>& groups :
       {std::vector<int>{}, std::vector<int>{2}, std::vector<int>{1, 2}}) {
    auto expect = HashAggregate(rows, groups, aggs);
    std::sort(expect.begin(), expect.end(), less);
    for (bool parallel : {false, true}) {
      auto got =
          HashAggregate(batches, groups, aggs, parallel ? Par() : Serial());
      std::sort(got.begin(), got.end(), less);
      EXPECT_EQ(got, expect) << (parallel ? "parallel" : "serial");
    }
  }
  // Batches with refined selections aggregate only active positions.
  auto filtered = batches;
  for (ColumnBatch& b : filtered)
    FilterBatch(&b, 1, CmpOp::kGe, Value(int64_t{5}));
  std::vector<Row> kept;
  for (const Row& r : rows)
    if (Predicate::Ge(1, Value(int64_t{5})).Eval(r)) kept.push_back(r);
  auto expect = HashAggregate(kept, {2}, aggs);
  auto got = HashAggregate(filtered, {2}, aggs, Serial());
  std::sort(expect.begin(), expect.end(), less);
  std::sort(got.begin(), got.end(), less);
  EXPECT_EQ(got, expect);
  // Empty input still yields the one global-aggregate row.
  const auto empty = HashAggregate(std::vector<ColumnBatch>{}, {},
                                   {AggSpec::Count("n")}, Serial());
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].Get(0).AsInt64(), 0);
}

TEST_F(VectorizedScanTest, ExtractedJoinKeysMatchRowJoin) {
  std::vector<Row> probe, build;
  for (Key id = 0; id < 700; ++id) {
    Row r = TRow(id, id % 43, id % 2 ? "odd" : "even", id * 0.5);
    if (id % 19 == 6) r.Set(1, Value::Null());
    probe.push_back(std::move(r));
  }
  for (Key id = 0; id < 300; ++id) {
    Row r = TRow(id, id % 43, "b" + std::to_string(id % 5), 1.0);
    if (id % 23 == 3) r.Set(1, Value::Null());
    build.push_back(std::move(r));
  }
  for (int key_col : {1, 2}) {  // int keys and string keys
    const auto expect = HashJoinPairs(probe, build, key_col, key_col,
                                      ExecContext{});
    const JoinKeyColumn pk = ExtractJoinKeys(probe, key_col);
    const JoinKeyColumn bk = ExtractJoinKeys(build, key_col);
    for (bool parallel : {false, true}) {
      ExecContext exec = parallel ? Par() : Serial();
      exec.min_parallel_join_build = 1;
      JoinStats js;
      EXPECT_EQ(HashJoinPairsKeys(pk, bk, exec, &js), expect)
          << "col " << key_col << (parallel ? " par" : " ser");
      EXPECT_EQ(js.build_rows, build.size());
      EXPECT_EQ(js.probe_rows, probe.size());
    }
    // Narrow hash mask: collisions force the key-confirm path.
    ExecContext masked;
    masked.join_hash_mask = 0x7;
    EXPECT_EQ(HashJoinPairsKeys(pk, bk, masked, nullptr), expect);
  }
  // Keys extracted from scan batches equal keys extracted from the rows.
  const auto batches = ScanHtapBatches(table_, &delta_, kMaxCSN - 1,
                                       Predicate::True(), {}, Serial(64));
  const auto scan_rows = BatchesToRows(batches);
  const JoinKeyColumn from_batches = ExtractJoinKeys(batches, 2);
  const JoinKeyColumn from_rows = ExtractJoinKeys(scan_rows, 2);
  ASSERT_EQ(from_batches.size(), from_rows.size());
  EXPECT_EQ(
      HashJoinPairsKeys(from_batches, ExtractJoinKeys(build, 2), Serial()),
      HashJoinPairsKeys(from_rows, ExtractJoinKeys(build, 2), Serial()));
}

TEST(JoinKeyColumnTest, MixedTypeKeysFallBackToBoxedValues) {
  // One key column mixing ints, doubles, and strings — the typed pass must
  // detect it and reproduce Value::operator== semantics (cross-type numeric
  // equality included).
  std::vector<Row> probe = {
      Row{Value(int64_t{1}), Value(int64_t{5})},
      Row{Value(int64_t{2}), Value(5.0)},
      Row{Value(int64_t{3}), Value("5")},
      Row{Value(int64_t{4}), Value::Null()},
      Row{Value(int64_t{5}), Value(2.5)},
  };
  std::vector<Row> build = {
      Row{Value(int64_t{10}), Value(5.0)},
      Row{Value(int64_t{11}), Value(int64_t{5})},
      Row{Value(int64_t{12}), Value("5")},
      Row{Value(int64_t{13}), Value::Null()},
  };
  const JoinKeyColumn pk = ExtractJoinKeys(probe, 1);
  const JoinKeyColumn bk = ExtractJoinKeys(build, 1);
  EXPECT_TRUE(pk.mixed);
  const auto expect = HashJoinPairs(probe, build, 1, 1, ExecContext{});
  EXPECT_EQ(HashJoinPairsKeys(pk, bk, ExecContext{}), expect);
  // NULL keys never matched.
  for (const auto& [p, b] : expect) {
    EXPECT_NE(p, 3u);
    EXPECT_NE(b, 3u);
  }
}

TEST(CompressionAdvisorTest, CollectSegmentStatsCounts) {
  ColumnVector v(Type::kString);
  v.AppendString("a");
  v.AppendString("a");
  v.AppendNull();
  v.AppendString("b");
  v.AppendString("b");
  v.AppendString("a");
  const SegmentValueStats st = CollectSegmentStats(v);
  EXPECT_EQ(st.rows, 6u);
  EXPECT_EQ(st.nulls, 1u);
  // Raw slot values: "a","a","","b","b","a" -> distinct {a, "", b}.
  EXPECT_EQ(st.distinct, 3u);
  EXPECT_EQ(st.runs, 4u);
  EXPECT_EQ(st.string_bytes, 5u);

  ColumnVector ints(Type::kInt64);
  for (int64_t x : {40, 40, 40, 55, 55, 70}) ints.AppendInt64(x);
  const SegmentValueStats si = CollectSegmentStats(ints);
  EXPECT_EQ(si.distinct, 3u);
  EXPECT_EQ(si.runs, 3u);
  EXPECT_EQ(si.int_min, 40);
  EXPECT_EQ(si.int_max, 70);
}

TEST(CompressionAdvisorTest, PicksEncodingBySmallestEstimatedFootprint) {
  // Cycling low-cardinality strings: no runs to exploit, tiny dictionary.
  ColumnVector cyc(Type::kString);
  const char* tags[] = {"red", "green", "blue"};
  for (int i = 0; i < 512; ++i) cyc.AppendString(tags[i % 3]);
  EXPECT_EQ(AdviseEncoding(cyc).chosen, EncodingType::kDictionary);

  // Long runs: RLE beats everything.
  ColumnVector runs(Type::kInt64);
  for (int i = 0; i < 1000; ++i) runs.AppendInt64(i / 100);
  EXPECT_EQ(AdviseEncoding(runs).chosen, EncodingType::kRle);

  // Wide-but-framable random ints: FOR bit-packing.
  ColumnVector narrow(Type::kInt64);
  for (int i = 0; i < 512; ++i)
    narrow.AppendInt64(1000000 + (i * 2654435761u) % 1024);
  EXPECT_EQ(AdviseEncoding(narrow).chosen, EncodingType::kForBitPack);

  // High-entropy doubles: nothing is applicable or wins -> PLAIN.
  ColumnVector dbl(Type::kDouble);
  for (int i = 0; i < 512; ++i) dbl.AppendDouble(i * 1.618033988749);
  const CompressionAdvice a = AdviseEncoding(dbl);
  EXPECT_EQ(a.chosen, EncodingType::kPlain);
  EXPECT_FALSE(
      a.candidates[static_cast<size_t>(EncodingType::kDictionary)].applicable);
  EXPECT_FALSE(
      a.candidates[static_cast<size_t>(EncodingType::kForBitPack)].applicable);

  // Every applicable estimate is filled in and the chosen one is minimal
  // among winners of the PLAIN bias.
  const CompressionAdvice r = AdviseEncoding(runs);
  const size_t plain =
      r.candidates[static_cast<size_t>(EncodingType::kPlain)].bytes;
  const size_t rle =
      r.candidates[static_cast<size_t>(EncodingType::kRle)].bytes;
  EXPECT_LT(rle, plain - plain / 8);
}

TEST(CompressionAdvisorTest, ColumnTableReencodesSegmentsWhenEnabled) {
  // Ints in [0, 2^33): ChooseEncoding's fixed range<2^32 gate rejects FOR,
  // but the advisor's size estimate (33 bits/value vs 64) picks it.
  const Schema schema({{"id", Type::kInt64}, {"w", Type::kInt64}});
  std::vector<Row> rows;
  for (Key id = 0; id < 1000; ++id)
    rows.push_back(
        Row{Value(id), Value(static_cast<int64_t>(
                           static_cast<int64_t>(id) * 4294967311LL %
                           (int64_t{1} << 33)))});
  ColumnTable plain_t(schema), advised_t(schema);
  advised_t.EnableCompressionAdvisor(true);
  plain_t.AppendBatch(rows, 1);
  advised_t.AppendBatch(rows, 1);
  EXPECT_EQ(plain_t.group(0)->columns[1].encoding(), EncodingType::kPlain);
  EXPECT_EQ(advised_t.group(0)->columns[1].encoding(),
            EncodingType::kForBitPack);
  EXPECT_LT(advised_t.group(0)->columns[1].MemoryBytes(),
            plain_t.group(0)->columns[1].MemoryBytes());
  // Scans read the re-encoded segments identically.
  EXPECT_EQ(ScanHtap(advised_t, nullptr, kMaxCSN - 1, Predicate::True(), {}),
            ScanHtap(plain_t, nullptr, kMaxCSN - 1, Predicate::True(), {}));

  // The per-encoding breakdown reflects what was built.
  const EncodingBreakdown bd = advised_t.EncodingStats();
  size_t total_segments = 0, total_bytes = 0;
  for (size_t e = 0; e < kNumEncodings; ++e) {
    total_segments += bd.segments[e];
    total_bytes += bd.bytes[e];
  }
  EXPECT_EQ(total_segments, 2u);  // one group x two columns
  EXPECT_GT(bd.segments[static_cast<size_t>(EncodingType::kForBitPack)], 0u);
  EXPECT_GT(total_bytes, 0u);
}

// End-to-end: every architecture with a batch-capable scan path must return
// the same query results with the vectorized pipeline on and off, and the
// vectorized run must actually take the batch path.
TEST(VectorizedDatabaseTest, VectorizedAndRowPipelinesAgree) {
  const std::vector<ArchitectureKind> archs = {
      ArchitectureKind::kRowPlusInMemoryColumn,
      ArchitectureKind::kDiskRowPlusDistributedColumn,
      ArchitectureKind::kColumnPlusDeltaRow,
  };
  for (ArchitectureKind arch : archs) {
    auto open = [arch](bool vectorized) {
      DatabaseOptions opts;
      opts.architecture = arch;
      opts.background_sync = false;
      opts.vectorized_exec = vectorized;
      opts.parallel_scan_threads = 4;
      auto res = Database::Open(opts);
      EXPECT_TRUE(res.ok());
      return std::move(*res);
    };
    auto row_db = open(false);
    auto vec_db = open(true);
    const Schema schema = TestSchema();
    for (auto* db : {row_db.get(), vec_db.get()}) {
      ASSERT_TRUE(db->CreateTable("t", schema).ok());
      for (Key id = 0; id < 600; ++id)
        ASSERT_TRUE(db->InsertRow("t", TRow(id, id % 9,
                                            id % 2 ? "odd" : "even",
                                            id * 0.5))
                        .ok());
      ASSERT_TRUE(db->ForceSyncAll().ok());
    }
    const std::vector<std::string> queries = {
        "SELECT id, price FROM t WHERE v >= 5 ORDER BY id",
        "SELECT * FROM t WHERE cat = 'odd' AND v < 3 ORDER BY id",
        "SELECT cat, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY cat "
        "ORDER BY cat",
        "SELECT COUNT(*) AS n, MIN(price) AS mn, MAX(price) AS mx FROM t",
    };
    for (const std::string& q : queries) {
      QueryExecInfo row_info, vec_info;
      auto a = row_db->ExecuteSql(q, &row_info);
      auto b = vec_db->ExecuteSql(q, &vec_info);
      ASSERT_TRUE(a.ok() && b.ok()) << q;
      EXPECT_EQ(a->rows, b->rows) << q;
      EXPECT_FALSE(row_info.vectorized) << q;
    }
    // A plain analytic filter resolves to a column scan in all three
    // architectures — the batch pipeline must have served it.
    QueryExecInfo info;
    ASSERT_TRUE(
        vec_db->ExecuteSql("SELECT id FROM t WHERE v >= 5", &info).ok());
    EXPECT_TRUE(info.vectorized) << "arch " << static_cast<int>(arch);

    // The advisor (on by default) surfaces per-encoding footprints.
    const EngineStats st = vec_db->Stats();
    size_t segs = 0, bytes = 0;
    for (size_t e = 0; e < kNumEncodings; ++e) {
      segs += st.column_encodings.segments[e];
      bytes += st.column_encodings.bytes[e];
    }
    EXPECT_GT(segs, 0u) << "arch " << static_cast<int>(arch);
    EXPECT_GT(bytes, 0u);
    EXPECT_LE(bytes, st.column_store_bytes);
  }
}

}  // namespace
}  // namespace htap
