// Morsel-driven parallel execution tests: parallel ScanHtap / ScanRowStore /
// HashAggregate must agree with their serial counterparts, the typed filter
// fast paths must match generic evaluation, and parallel readers must stay
// correct while a sync-pipeline writer appends/deletes/compacts concurrently.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "core/database.h"
#include "exec/executor.h"
#include "txn/txn_manager.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64},
                 {"cat", Type::kString}, {"price", Type::kDouble}});
}

Row TRow(Key id, int64_t v, const std::string& cat, double price) {
  return Row{Value(id), Value(v), Value(cat), Value(price)};
}

class ParallelScanTest : public ::testing::Test {
 protected:
  ParallelScanTest() : table_(TestSchema()), pool_(4, "test-ap") {
    // Eight row groups of 64 rows each.
    std::vector<Row> batch;
    for (Key id = 0; id < 512; ++id) {
      batch.push_back(TRow(id, id % 13, id % 2 ? "odd" : "even", id * 0.25));
      if (batch.size() == 64) {
        table_.AppendBatch(batch, 1);
        batch.clear();
      }
    }
    // Positional deletes sprinkled across groups.
    for (Key id = 7; id < 512; id += 31) table_.DeleteKey(id, 2);
    // Delta overrides: updates, a delete, and fresh inserts.
    for (Key id = 3; id < 512; id += 97) {
      DeltaEntry e;
      e.op = ChangeOp::kUpdate;
      e.key = id;
      e.row = TRow(id, 7777, "patched", 1.5);
      e.csn = 10;
      delta_.Append(e);
    }
    DeltaEntry del;
    del.op = ChangeOp::kDelete;
    del.key = 20;
    del.csn = 11;
    delta_.Append(del);
    for (Key id = 9000; id < 9008; ++id) {
      DeltaEntry ins;
      ins.op = ChangeOp::kInsert;
      ins.key = id;
      ins.row = TRow(id, 1, "new", 2.0);
      ins.csn = 12;
      delta_.Append(ins);
    }
  }

  ExecContext Par() { return ExecContext{&pool_, 4}; }

  ColumnTable table_;
  InMemoryDeltaStore delta_;
  ThreadPool pool_;
};

TEST_F(ParallelScanTest, MatchesSerialExactlyIncludingOrder) {
  const std::vector<Predicate> preds = {
      Predicate::True(),
      Predicate::Ge(0, Value(int64_t{100})),
      Predicate::And({Predicate::Ge(1, Value(int64_t{3})),
                      Predicate::Eq(2, Value("odd"))}),
      Predicate::Gt(3, Value(100.0)),
  };
  for (const Predicate& pred : preds) {
    for (const std::vector<int>& proj :
         {std::vector<int>{}, std::vector<int>{0, 3}}) {
      ScanStats serial_st, par_st;
      const auto serial =
          ScanHtap(table_, &delta_, kMaxCSN - 1, pred, proj, &serial_st);
      const auto par = ScanHtap(table_, &delta_, kMaxCSN - 1, pred, proj,
                                Par(), &par_st);
      // Exact equality, including row order: per-group partials are merged
      // in group index order and the delta partition comes last either way.
      EXPECT_EQ(serial, par);
      EXPECT_EQ(serial_st.groups_total, par_st.groups_total);
      EXPECT_EQ(serial_st.groups_skipped, par_st.groups_skipped);
      EXPECT_EQ(serial_st.main_rows_emitted, par_st.main_rows_emitted);
      EXPECT_EQ(serial_st.delta_rows_emitted, par_st.delta_rows_emitted);
      EXPECT_EQ(serial_st.delta_entries_read, par_st.delta_entries_read);
    }
  }
}

TEST_F(ParallelScanTest, MoreWorkersThanGroupsIsFine) {
  ColumnTable one(TestSchema());
  one.AppendBatch({TRow(1, 1, "a", 1.0), TRow(2, 2, "b", 2.0)}, 1);
  const auto serial = ScanHtap(one, nullptr, kMaxCSN - 1, Predicate::True(), {});
  const auto par = ScanHtap(one, nullptr, kMaxCSN - 1, Predicate::True(), {},
                            Par(), nullptr);
  EXPECT_EQ(serial, par);
  // Empty table, parallel context.
  ColumnTable empty(TestSchema());
  EXPECT_TRUE(ScanHtap(empty, nullptr, kMaxCSN - 1, Predicate::True(), {},
                       Par(), nullptr)
                  .empty());
}

TEST_F(ParallelScanTest, DoubleFastPathMatchesGenericEval) {
  // `price` has no nulls, so every comparison below takes the typed kDouble
  // loop; validate it against row-at-a-time Predicate::Eval.
  const std::vector<Predicate> preds = {
      Predicate::Lt(3, Value(10.0)),   Predicate::Ge(3, Value(100.0)),
      Predicate::Eq(3, Value(0.25)),   Predicate::Ne(3, Value(0.0)),
      Predicate::Gt(3, Value(int64_t{100})),  // int literal vs double column
      Predicate::Le(3, Value(int64_t{2})),
  };
  const auto all =
      ScanHtap(table_, &delta_, kMaxCSN - 1, Predicate::True(), {});
  for (const Predicate& pred : preds) {
    std::vector<Row> expect;
    for (const Row& r : all)
      if (pred.Eval(r)) expect.push_back(r);
    const auto got = ScanHtap(table_, &delta_, kMaxCSN - 1, pred, {});
    EXPECT_EQ(expect, got) << pred.ToString(nullptr);
  }
}

TEST_F(ParallelScanTest, NullableDoubleColumnFallsBackCorrectly) {
  ColumnTable t(TestSchema());
  std::vector<Row> rows;
  for (Key id = 0; id < 32; ++id) {
    Row r = TRow(id, id, "x", id * 1.0);
    if (id % 5 == 0) r.Set(3, Value::Null());
    rows.push_back(std::move(r));
  }
  t.AppendBatch(rows, 1);
  // Nulls never satisfy comparisons.
  const auto out =
      ScanHtap(t, nullptr, kMaxCSN - 1, Predicate::Ge(3, Value(0.0)), {});
  EXPECT_EQ(out.size(), 32u - 7u);
  for (const Row& r : out) EXPECT_NE(r.Get(0).AsInt64() % 5, 0);
}

TEST_F(ParallelScanTest, ParallelRowScanMatchesSerial) {
  TransactionManager mgr;
  MvccRowStore store(1, TestSchema(), &mgr, nullptr);
  auto t = mgr.Begin();
  for (Key id = 0; id < 300; ++id)
    store.Insert(t.get(), TRow(id, id % 7, id % 2 ? "odd" : "even", id * 0.5));
  mgr.Commit(t.get());
  auto d = mgr.Begin();
  for (Key id = 0; id < 300; id += 50) store.Delete(d.get(), id);
  mgr.Commit(d.get());

  const Snapshot snap = mgr.CurrentSnapshot();
  for (const Predicate& pred :
       {Predicate::True(), Predicate::Eq(1, Value(int64_t{3}))}) {
    const auto serial = ScanRowStore(store, snap, pred, {});
    const auto par = ScanRowStore(store, snap, pred, {}, Par());
    // Range partitions concatenate in key order — identical to serial.
    EXPECT_EQ(serial, par);
  }
}

TEST_F(ParallelScanTest, SplitKeyRangesCoversDomain) {
  TransactionManager mgr;
  MvccRowStore store(1, TestSchema(), &mgr, nullptr);
  auto t = mgr.Begin();
  for (Key id = 0; id < 100; ++id) store.Insert(t.get(), TRow(id, 0, "", 0));
  mgr.Commit(t.get());
  const auto ranges = store.SplitKeyRanges(4);
  ASSERT_EQ(ranges.size(), 4u);
  // Contiguous, non-overlapping, covering every key.
  for (size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second + 1);
  EXPECT_LE(ranges.front().first, Key{0});
  EXPECT_GE(ranges.back().second, Key{99});
  // Tiny stores do not split.
  TransactionManager m2;
  MvccRowStore small(1, TestSchema(), &m2, nullptr);
  EXPECT_EQ(small.SplitKeyRanges(4).size(), 1u);
}

TEST_F(ParallelScanTest, ParallelAggregateMatchesSerial) {
  std::vector<Row> rows;
  for (Key id = 0; id < 10000; ++id) {
    Row r = TRow(id, id % 23, id % 2 ? "odd" : "even", (id % 97) * 0.5);
    if (id % 11 == 0) r.Set(1, Value::Null());
    rows.push_back(std::move(r));
  }
  const std::vector<AggSpec> aggs = {AggSpec::Count("n"), AggSpec::Sum(1, "s"),
                                     AggSpec::Min(3, "mn"),
                                     AggSpec::Max(3, "mx"),
                                     AggSpec::Avg(1, "avg")};
  for (const std::vector<int>& groups :
       {std::vector<int>{}, std::vector<int>{2}, std::vector<int>{1, 2}}) {
    auto serial = HashAggregate(rows, groups, aggs);
    auto par = HashAggregate(rows, groups, aggs, Par());
    // Group output order is unspecified (hash-table order); sort to compare.
    auto less = [](const Row& a, const Row& b) {
      return a.ToString() < b.ToString();
    };
    std::sort(serial.begin(), serial.end(), less);
    std::sort(par.begin(), par.end(), less);
    EXPECT_EQ(serial, par);
  }
  // Empty input: global aggregate still yields its one row in parallel mode.
  const auto empty =
      HashAggregate(std::vector<Row>{}, {}, {AggSpec::Count("n")}, Par());
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].Get(0).AsInt64(), 0);
}

TEST_F(ParallelScanTest, BatchScanMatchesSerialAtAnyThreadCount) {
  // The vectorized scan joins the serial≡parallel suite: batches flattened
  // back to rows must equal the serial row scan bit for bit.
  const Predicate pred = Predicate::And(
      {Predicate::Ge(1, Value(int64_t{3})), Predicate::Eq(2, Value("odd"))});
  const auto serial = ScanHtap(table_, &delta_, kMaxCSN - 1, pred, {});
  ExecContext exec = Par();
  exec.batch_rows = 48;  // force several batches per row group
  const auto batches =
      ScanHtapBatches(table_, &delta_, kMaxCSN - 1, pred, {}, exec, nullptr);
  EXPECT_EQ(BatchesToRows(batches), serial);
}

// Batch-scan variant of the reader/writer race: parallel vectorized readers
// must observe atomic column-store states while a writer appends, deletes,
// and compacts (the TSan job runs this under the race detector).
TEST_F(ParallelScanTest, ConcurrentBatchReadersWithChurningWriter) {
  ColumnTable t(TestSchema());
  std::vector<Row> seed;
  for (Key id = 0; id < 256; ++id)
    seed.push_back(TRow(id, id, "seed", id * 1.0));
  t.AppendBatch(seed, 1);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    CSN csn = 100;
    for (int iter = 0; iter < 80; ++iter) {
      std::vector<Row> batch;
      for (Key id = 1000 + (iter % 8) * 50; id < 1000 + (iter % 8) * 50 + 30;
           ++id)
        batch.push_back(TRow(id, iter, "hot", iter * 1.0));
      t.AppendBatch(batch, ++csn);
      for (Key id = 1000 + (iter % 8) * 50; id < 1000 + (iter % 8) * 50 + 10;
           ++id)
        t.DeleteKey(id, csn);
      if (iter % 16 == 15) t.Compact();
    }
    done.store(true);
  });

  auto reader = [&] {
    ExecContext exec{&pool_, 4};
    exec.batch_rows = 64;
    do {
      const auto batches = ScanHtapBatches(t, nullptr, kMaxCSN - 1,
                                           Predicate::True(), {}, exec);
      std::set<Key> keys;
      for (const Row& r : BatchesToRows(batches)) {
        const Key k = r.Get(0).AsInt64();
        EXPECT_TRUE(keys.insert(k).second) << "duplicate key " << k;
      }
      EXPECT_GE(keys.size(), 256u);  // the seed rows never disappear
    } while (!done.load());
  };
  std::thread r1(reader), r2(reader);
  writer.join();
  r1.join();
  r2.join();
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup tg(nullptr);
  int x = 0;
  tg.Run([&] { x = 42; });
  EXPECT_EQ(x, 42);  // ran synchronously
  tg.Wait();
}

TEST(TaskGroupTest, TracksOnlyItsOwnTasks) {
  ThreadPool pool(2, "tg-test");
  std::atomic<int> a{0}, b{0};
  {
    TaskGroup g1(&pool);
    TaskGroup g2(&pool);
    for (int i = 0; i < 16; ++i) g1.Run([&] { a.fetch_add(1); });
    for (int i = 0; i < 16; ++i) g2.Run([&] { b.fetch_add(1); });
    g1.Wait();
    EXPECT_EQ(a.load(), 16);
  }
  EXPECT_EQ(b.load(), 16);
}

// The satellite stress test: parallel HTAP readers racing a sync-pipeline
// writer under the RWLatch discipline. Each scan must observe an atomic
// column-store state unioned with the (static) delta: keys unique, delta
// updates/deletes/inserts always reflected.
TEST_F(ParallelScanTest, ConcurrentReadersWithAppendDeleteCompactWriter) {
  ColumnTable t(TestSchema());
  InMemoryDeltaStore delta;
  std::vector<Row> seed;
  for (Key id = 0; id < 256; ++id)
    seed.push_back(TRow(id, id, "seed", id * 1.0));
  t.AppendBatch(seed, 1);
  // Static delta: update keys 0..9, delete 10..14, insert 9000..9009.
  for (Key id = 0; id < 10; ++id) {
    DeltaEntry e;
    e.op = ChangeOp::kUpdate;
    e.key = id;
    e.row = TRow(id, 7777, "patched", 0.0);
    e.csn = 5;
    delta.Append(e);
  }
  for (Key id = 10; id < 15; ++id) {
    DeltaEntry e;
    e.op = ChangeOp::kDelete;
    e.key = id;
    e.csn = 5;
    delta.Append(e);
  }
  for (Key id = 9000; id < 9010; ++id) {
    DeltaEntry e;
    e.op = ChangeOp::kInsert;
    e.key = id;
    e.row = TRow(id, 1, "new", 0.0);
    e.csn = 5;
    delta.Append(e);
  }

  std::atomic<bool> done{false};
  // Writer churns keys 1000..1999 (disjoint from the delta's key set) with
  // AppendBatch (insert + update), DeleteKey, and periodic Compact — all of
  // which take the table's write latch internally.
  std::thread writer([&] {
    CSN csn = 100;
    for (int iter = 0; iter < 120; ++iter) {
      std::vector<Row> batch;
      for (Key id = 1000 + (iter % 10) * 100; id < 1000 + (iter % 10) * 100 + 40;
           ++id)
        batch.push_back(TRow(id, iter, "hot", iter * 1.0));
      t.AppendBatch(batch, ++csn);
      for (Key id = 1000 + (iter % 10) * 100; id < 1000 + (iter % 10) * 100 + 10;
           ++id)
        t.DeleteKey(id, csn);
      if (iter % 16 == 15) t.Compact();
    }
    done.store(true);
  });

  auto reader = [&] {
    do {
      const auto out = ScanHtap(t, &delta, kMaxCSN - 1, Predicate::True(), {},
                                ExecContext{&pool_, 4}, nullptr);
      std::set<Key> keys;
      int64_t patched = 0, fresh = 0;
      for (const Row& r : out) {
        const Key k = r.Get(0).AsInt64();
        EXPECT_TRUE(keys.insert(k).second) << "duplicate key " << k;
        EXPECT_FALSE(k >= 10 && k < 15) << "delta-deleted key visible";
        if (k < 10) {
          EXPECT_EQ(r.Get(1).AsInt64(), 7777);
          ++patched;
        }
        if (k >= 9000) ++fresh;
      }
      EXPECT_EQ(patched, 10);
      EXPECT_EQ(fresh, 10);
      EXPECT_GE(keys.size(), 256u - 15u + 10u);  // seed survivors + inserts
    } while (!done.load());
  };
  std::thread r1(reader), r2(reader);
  writer.join();
  r1.join();
  r2.join();
}

TEST(ParallelDatabaseTest, ParallelAndSerialEnginesAgree) {
  auto open = [](size_t threads) {
    DatabaseOptions opts;
    opts.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
    opts.background_sync = false;
    opts.parallel_scan_threads = threads;
    auto res = Database::Open(opts);
    EXPECT_TRUE(res.ok());
    return std::move(*res);
  };
  auto serial_db = open(1);
  auto par_db = open(4);
  const Schema schema = TestSchema();
  for (auto* db : {serial_db.get(), par_db.get()}) {
    ASSERT_TRUE(db->CreateTable("t", schema).ok());
    for (Key id = 0; id < 500; ++id)
      ASSERT_TRUE(
          db->InsertRow("t", TRow(id, id % 9, id % 2 ? "odd" : "even",
                                  id * 0.5))
              .ok());
    ASSERT_TRUE(db->ForceSyncAll().ok());
  }
  EXPECT_EQ(serial_db->ap_scan_pool(), nullptr);
  ASSERT_NE(par_db->ap_scan_pool(), nullptr);
  EXPECT_EQ(par_db->ap_scan_pool()->num_threads(), 4u);

  const std::vector<std::string> queries = {
      "SELECT id, price FROM t WHERE v >= 5 ORDER BY id",
      "SELECT cat, COUNT(*) AS n, SUM(price) AS s FROM t GROUP BY cat "
      "ORDER BY cat",
      "SELECT COUNT(*) AS n, MIN(price) AS mn, MAX(price) AS mx FROM t",
  };
  for (const std::string& q : queries) {
    auto a = serial_db->ExecuteSql(q);
    auto b = par_db->ExecuteSql(q);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ(a->rows, b->rows) << q;
  }
}

}  // namespace
}  // namespace htap
