// Tests for the runtime lock-rank checker (common/mutex.h, DESIGN.md §11):
// in-order acquisition passes, out-of-order acquisition aborts naming both
// locks, try-lock is the sanctioned escape hatch, releases may be non-LIFO,
// condition-variable waits keep the held-rank stack consistent, and the
// wrappers are layout-identical to the std types when the checker is
// compiled out (the release-build branch at the bottom).
//
// Build with -DHTAP_LOCK_RANK=ON (or CMAKE_BUILD_TYPE=Debug) to run the
// checker branch; the default Release tree exercises the compiled-out branch.

#include <gtest/gtest.h>

#include <atomic>
// htap-lint: raw-mutex — this test asserts the wrappers are
// layout-identical to the std types, so it must name them.
#include <mutex>
#include <shared_mutex>  // htap-lint: raw-mutex — same layout assertion
#include <thread>

#include "common/latch.h"
#include "common/mutex.h"

namespace htap {
namespace {

#if HTAP_LOCK_RANK_CHECKS

// The bodies below lock and deliberately never unlock (they abort first),
// or lock in patterns the static analysis cannot prove balanced; the
// runtime checker, not the static analysis, is under test here.

void LockInOrder() NO_THREAD_SAFETY_ANALYSIS {
  Mutex outer(LockRank::kSyncDaemon, "t-daemon");
  Mutex mid(LockRank::kEngineTables, "t-tables");
  Mutex inner(LockRank::kCatalog, "t-catalog");
  outer.Lock();
  mid.Lock();
  inner.Lock();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 3);
  inner.Unlock();
  mid.Unlock();
  outer.Unlock();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

TEST(LockRankTest, InOrderAcquisitionPasses) { LockInOrder(); }

void LockEqualRanks() NO_THREAD_SAFETY_ANALYSIS {
  Mutex a(LockRank::kLeaf, "t-leaf-a");
  Mutex b(LockRank::kLeaf, "t-leaf-b");
  a.Lock();
  b.Lock();  // equal rank: permitted
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

TEST(LockRankTest, EqualRankAcquisitionPasses) { LockEqualRanks(); }

void AcquireOutOfOrder() NO_THREAD_SAFETY_ANALYSIS {
  Mutex outer(LockRank::kCatalog, "t-held-catalog");
  Mutex inner(LockRank::kTxnCommit, "t-acq-commit");
  outer.Lock();
  inner.Lock();  // rank 200 while holding rank 850: aborts
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      AcquireOutOfOrder(),
      "lock-rank violation.*\"t-acq-commit\".*holding.*\"t-held-catalog\"");
}

void AcquireSharedOutOfOrder() NO_THREAD_SAFETY_ANALYSIS {
  SharedMutex outer(LockRank::kWal, "t-held-wal");
  RWLatch inner(LockRank::kTableLatch, "t-acq-latch");
  outer.Lock();
  inner.LockShared();  // shared acquisitions obey the same order: aborts
}

TEST(LockRankDeathTest, SharedAcquisitionObeysRankOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AcquireSharedOutOfOrder(),
               "lock-rank violation.*\"t-acq-latch\".*\"t-held-wal\"");
}

void SpinOutOfOrder() NO_THREAD_SAFETY_ANALYSIS {
  SpinLatch outer(LockRank::kVersionChain, "t-held-chain");
  Mutex inner(LockRank::kEngineTables, "t-acq-tables");
  outer.Lock();
  inner.Lock();  // spin latches participate too: aborts
}

TEST(LockRankDeathTest, SpinLatchParticipatesInRanking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SpinOutOfOrder(),
               "lock-rank violation.*\"t-acq-tables\".*\"t-held-chain\"");
}

void TryLockOutOfOrder() NO_THREAD_SAFETY_ANALYSIS {
  Mutex outer(LockRank::kCatalog, "t-outer");
  Mutex inner(LockRank::kTxnCommit, "t-inner");
  outer.Lock();
  // TryLock never blocks, so an out-of-order try-acquisition cannot
  // deadlock; it is the sanctioned escape hatch and must not abort.
  ASSERT_TRUE(inner.TryLock());
  EXPECT_EQ(lock_rank::HeldCountForTest(), 2);
  inner.Unlock();
  outer.Unlock();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

TEST(LockRankTest, TryLockIsTheEscapeHatch) { TryLockOutOfOrder(); }

void BlockingAcquireUnderTryHeld() NO_THREAD_SAFETY_ANALYSIS {
  Mutex held_via_try(LockRank::kCatalog, "t-try-held");
  Mutex lower(LockRank::kTxnCommit, "t-then-blocked");
  ASSERT_TRUE(held_via_try.TryLock());
  lower.Lock();  // try-held locks still rank later blocking acquisitions
}

TEST(LockRankDeathTest, TryHeldLocksStillRankLaterAcquisitions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(BlockingAcquireUnderTryHeld(),
               "lock-rank violation.*\"t-then-blocked\".*\"t-try-held\"");
}

void ReleaseNonLifo() NO_THREAD_SAFETY_ANALYSIS {
  Mutex a(LockRank::kSyncDaemon, "t-a");
  Mutex b(LockRank::kEngineTables, "t-b");
  Mutex c(LockRank::kWal, "t-c");
  a.Lock();
  b.Lock();
  c.Lock();
  b.Unlock();  // middle release: the held set is a bag, not a stack
  EXPECT_EQ(lock_rank::HeldCountForTest(), 2);
  Mutex d(LockRank::kWal, "t-d");
  d.Lock();  // validated against the *remaining* held set (max rank 800)
  d.Unlock();
  c.Unlock();
  a.Unlock();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

TEST(LockRankTest, NonLifoReleaseKeepsHeldSetConsistent) {
  ReleaseNonLifo();
}

TEST(LockRankTest, ScopedGuardsRecordAndReleaseRanks) {
  Mutex mu(LockRank::kEngineTables, "t-scoped");
  SpinLatch sl(LockRank::kVersionChain, "t-scoped-spin");
  RWLatch rw(LockRank::kTableLatch, "t-scoped-rw");
  {
    MutexLock lk(&mu);
    ReadGuard rg(rw);
    SpinGuard sg(sl);
    EXPECT_EQ(lock_rank::HeldCountForTest(), 3);
  }
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
  {
    WriteGuard wg(rw);
    EXPECT_EQ(lock_rank::HeldCountForTest(), 1);
  }
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

TEST(LockRankTest, CondVarWaitReacquiresThroughTheCheckedPath) {
  Mutex mu(LockRank::kTaskGroup, "t-cv");
  CondVar cv;
  bool flag = false;
  std::thread notifier([&]() NO_THREAD_SAFETY_ANALYSIS {
    MutexLock lk(&mu);
    flag = true;
    cv.NotifyAll();
  });
  {
    MutexLock lk(&mu);
    while (!flag) cv.Wait(mu);  // wait unlocks (popping the rank) and
                                // relocks through the ranked Lock()
    EXPECT_EQ(lock_rank::HeldCountForTest(), 1);
  }
  notifier.join();
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);
}

#else  // !HTAP_LOCK_RANK_CHECKS

// Zero-cost guarantee: with the checker compiled out the wrappers carry no
// extra state (also asserted in the headers; duplicated here so this test
// fails loudly if the header assertions are ever weakened).
// htap-lint: raw-mutex — sizeof comparison against the std type is the
// point of the assertion; no lock is ever constructed.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "htap::Mutex must be layout-identical to std::mutex");
// htap-lint: raw-mutex — same sizeof-only use
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "htap::SharedMutex must be layout-identical to std::shared_mutex");
static_assert(sizeof(SpinLatch) == sizeof(std::atomic<bool>),
              "SpinLatch must be layout-identical to its atomic flag");

TEST(LockRankTest, CheckerCompiledOutInRelease) {
  // Wrappers remain fully usable; acquisition order is unchecked.
  Mutex inner(LockRank::kTxnCommit, "release-inner");
  Mutex outer(LockRank::kCatalog, "release-outer");
  MutexLock a(&outer);
  MutexLock b(&inner);  // would abort under HTAP_LOCK_RANK=ON
  EXPECT_EQ(lock_rank::HeldCountForTest(), 0);  // nothing is recorded
}

#endif  // HTAP_LOCK_RANK_CHECKS

}  // namespace
}  // namespace htap
