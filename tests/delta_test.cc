// Delta-store tests: all three designs honor the DeltaReader contract
// (CSN-ordered visibility, drain semantics), plus design-specific behavior
// (L1->L2 spill, log-delta file decoding and B+-tree key lookups).

#include <gtest/gtest.h>

#include "delta/delta.h"

namespace htap {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

DeltaEntry E(ChangeOp op, Key k, int64_t v, CSN csn) {
  DeltaEntry e;
  e.op = op;
  e.key = k;
  e.csn = csn;
  if (op != ChangeOp::kDelete) e.row = Row{Value(k), Value(v)};
  return e;
}

std::vector<DeltaEntry> Collect(const DeltaReader& r, CSN snap) {
  std::vector<DeltaEntry> out;
  r.ScanVisible(snap, [&](const DeltaEntry& e) { out.push_back(e); });
  return out;
}

// ---- Shared contract, parameterized over the three designs -----------

enum class DeltaKind { kInMemory, kL1L2, kLog };

class DeltaContractTest : public ::testing::TestWithParam<DeltaKind> {
 protected:
  // A thin uniform mutation interface over the three stores.
  void SetUp() override {
    switch (GetParam()) {
      case DeltaKind::kInMemory:
        mem_ = std::make_unique<InMemoryDeltaStore>();
        break;
      case DeltaKind::kL1L2:
        l1l2_ = std::make_unique<L1L2DeltaStore>(TestSchema(), 4);
        break;
      case DeltaKind::kLog:
        log_ = std::make_unique<LogDeltaStore>();
        break;
    }
  }

  void Append(const DeltaEntry& e) {
    if (mem_) mem_->Append(e);
    if (l1l2_) l1l2_->Append(e);
    if (log_) log_->AppendFile({e});
  }

  DeltaReader* reader() {
    if (mem_) return mem_.get();
    if (l1l2_) return l1l2_.get();
    return log_.get();
  }

  std::vector<DeltaEntry> Drain(CSN csn) {
    if (mem_) return mem_->DrainUpTo(csn);
    if (l1l2_) return l1l2_->DrainUpTo(csn);
    return log_->DrainUpTo(csn);
  }

  std::unique_ptr<InMemoryDeltaStore> mem_;
  std::unique_ptr<L1L2DeltaStore> l1l2_;
  std::unique_ptr<LogDeltaStore> log_;
};

TEST_P(DeltaContractTest, ScanVisibleHonorsSnapshot) {
  for (CSN c = 1; c <= 10; ++c)
    Append(E(ChangeOp::kInsert, static_cast<Key>(c), 100 + static_cast<int64_t>(c), c));
  EXPECT_EQ(Collect(*reader(), 5).size(), 5u);
  EXPECT_EQ(Collect(*reader(), 0).size(), 0u);
  EXPECT_EQ(Collect(*reader(), 100).size(), 10u);
  EXPECT_EQ(reader()->EntryCount(), 10u);
}

TEST_P(DeltaContractTest, ScanPreservesCommitOrder) {
  for (CSN c = 1; c <= 20; ++c)
    Append(E(ChangeOp::kUpdate, static_cast<Key>(c % 3), c, c));
  const auto entries = Collect(*reader(), 20);
  ASSERT_EQ(entries.size(), 20u);
  for (size_t i = 1; i < entries.size(); ++i)
    EXPECT_LE(entries[i - 1].csn, entries[i].csn);
}

TEST_P(DeltaContractTest, RowPayloadSurvives) {
  Append(E(ChangeOp::kInsert, 7, 777, 3));
  const auto entries = Collect(*reader(), 3);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].row.Get(1).AsInt64(), 777);
  EXPECT_EQ(entries[0].op, ChangeOp::kInsert);
}

TEST_P(DeltaContractTest, DeletesCarryNoRow) {
  Append(E(ChangeOp::kDelete, 7, 0, 1));
  const auto entries = Collect(*reader(), 1);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].op, ChangeOp::kDelete);
  EXPECT_TRUE(entries[0].row.empty());
}

TEST_P(DeltaContractTest, DrainRemovesOnlyOldEntries) {
  for (CSN c = 1; c <= 10; ++c)
    Append(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  const auto drained = Drain(6);
  EXPECT_EQ(drained.size(), 6u);
  EXPECT_EQ(reader()->EntryCount(), 4u);
  const auto rest = Collect(*reader(), 100);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest[0].csn, 7u);
}

INSTANTIATE_TEST_SUITE_P(AllDeltaDesigns, DeltaContractTest,
                         ::testing::Values(DeltaKind::kInMemory,
                                           DeltaKind::kL1L2,
                                           DeltaKind::kLog));

// ---- Design-specific behavior ------------------------------------------

TEST(L1L2DeltaTest, SpillsAtThreshold) {
  L1L2DeltaStore d(TestSchema(), /*l1_spill_threshold=*/8);
  for (CSN c = 1; c <= 7; ++c) d.Append(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  EXPECT_EQ(d.l1_size(), 7u);
  EXPECT_EQ(d.l2_size(), 0u);
  d.Append(E(ChangeOp::kInsert, 8, 8, 8));  // hits the threshold
  EXPECT_EQ(d.l1_size(), 0u);
  EXPECT_EQ(d.l2_size(), 8u);
  // Scan covers both layers in order.
  d.Append(E(ChangeOp::kInsert, 9, 9, 9));
  const auto all = Collect(d, 100);
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all.back().csn, 9u);
}

TEST(L1L2DeltaTest, ManualSpillAndDrainAcrossLayers) {
  L1L2DeltaStore d(TestSchema(), 1000);
  for (CSN c = 1; c <= 5; ++c) d.Append(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  d.SpillL1();
  for (CSN c = 6; c <= 8; ++c) d.Append(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  // Drain cuts through the middle of the L2 chunk.
  const auto drained = d.DrainUpTo(3);
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(d.EntryCount(), 5u);
  const auto rest = Collect(d, 100);
  EXPECT_EQ(rest.front().csn, 4u);
}

TEST(L1L2DeltaTest, DeletesInColumnarL2RoundTrip) {
  L1L2DeltaStore d(TestSchema(), 2);
  d.Append(E(ChangeOp::kInsert, 1, 10, 1));
  d.Append(E(ChangeOp::kDelete, 1, 0, 2));  // triggers spill of both
  EXPECT_EQ(d.l2_size(), 2u);
  const auto all = Collect(d, 10);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].op, ChangeOp::kDelete);
  EXPECT_TRUE(all[1].row.empty());
}

TEST(LogDeltaTest, FilesAreEncodedAndCounted) {
  LogDeltaStore d;
  std::vector<DeltaEntry> batch;
  for (CSN c = 1; c <= 5; ++c)
    batch.push_back(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  d.AppendFile(batch);
  d.AppendFile({E(ChangeOp::kUpdate, 1, 99, 6)});
  EXPECT_EQ(d.num_files(), 2u);
  EXPECT_EQ(d.EntryCount(), 6u);
  EXPECT_EQ(d.bytes_decoded(), 0u);
  Collect(d, 100);
  EXPECT_GT(d.bytes_decoded(), 0u);  // reads pay the decode cost
}

TEST(LogDeltaTest, KeyIndexFindsLatestEntry) {
  LogDeltaStore d;
  d.AppendFile({E(ChangeOp::kInsert, 42, 1, 1)});
  d.AppendFile({E(ChangeOp::kUpdate, 42, 2, 2)});
  DeltaEntry out;
  ASSERT_TRUE(d.LookupLatest(42, &out));
  EXPECT_EQ(out.csn, 2u);
  EXPECT_EQ(out.row.Get(1).AsInt64(), 2);
  EXPECT_FALSE(d.LookupLatest(7, &out));
}

TEST(LogDeltaTest, DrainDropsWholeFilesOnly) {
  LogDeltaStore d;
  d.AppendFile({E(ChangeOp::kInsert, 1, 1, 1), E(ChangeOp::kInsert, 2, 2, 2)});
  d.AppendFile({E(ChangeOp::kInsert, 3, 3, 3), E(ChangeOp::kInsert, 4, 4, 4)});
  // CSN 3 falls inside file 2: only file 1 (max csn 2) is drained.
  const auto drained = d.DrainUpTo(3);
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(d.num_files(), 1u);
  DeltaEntry out;
  EXPECT_TRUE(d.LookupLatest(3, &out));  // still resolvable after seq shift
  EXPECT_FALSE(d.LookupLatest(1, &out));  // merged-away index entry is stale
}

TEST(InMemoryDeltaTest, MemoryAccountingShrinksOnDrain) {
  InMemoryDeltaStore d;
  for (CSN c = 1; c <= 100; ++c)
    d.Append(E(ChangeOp::kInsert, static_cast<Key>(c), c, c));
  const size_t before = d.MemoryBytes();
  EXPECT_GT(before, 0u);
  d.DrainUpTo(50);
  EXPECT_LT(d.MemoryBytes(), before);
  EXPECT_EQ(d.max_csn(), 100u);
}

}  // namespace
}  // namespace htap
