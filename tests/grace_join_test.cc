// Grace (out-of-core) hash join tests (DESIGN.md §9): with a spill budget
// below the build-side footprint the join must write partition runs to
// disk, join them partition-at-a-time — recursing on skewed partitions —
// and still produce output byte-identical to the nested-loop reference at
// every thread count. Also covers the planner layer riding on the pair
// API: build-side selection (swap fixup) and greedy join-order selection
// (hidden-index fixup), plus spill-file cleanup. Runs under
// ThreadSanitizer via ./ci.sh.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/database.h"
#include "exec/executor.h"
#include "opt/join_planner.h"
#include "storage/spill_file.h"

namespace htap {
namespace {

/// Ground truth with the join's documented output order: left rows in input
/// order, and for each left row its matches in right (build) input order.
std::vector<Row> NestedLoopJoin(const std::vector<Row>& left,
                                const std::vector<Row>& right, int left_col,
                                int right_col) {
  std::vector<Row> out;
  for (const Row& l : left) {
    const Value& k = l.Get(static_cast<size_t>(left_col));
    if (k.is_null()) continue;
    for (const Row& r : right) {
      const Value& rk = r.Get(static_cast<size_t>(right_col));
      if (rk.is_null() || rk != k) continue;
      Row joined = l;
      for (const Value& v : r.values()) joined.Append(v);
      out.push_back(std::move(joined));
    }
  }
  return out;
}

struct Dataset {
  std::vector<Row> left;
  std::vector<Row> right;
};

/// Duplicate keys, NULLs, cross-type numeric keys, and a fat string payload
/// on the build side so the footprint dwarfs a kilobyte-scale budget.
Dataset SpillDataset(int64_t build_rows = 2000, int64_t key_mod = 97) {
  Dataset d;
  for (int64_t i = 0; i < 3000; ++i) {
    Row r{Value(i), Value(i % key_mod), Value(i * 0.25)};
    if (i % 31 == 0) r.Set(1, Value::Null());
    if (i % 13 == 0)
      r.Set(1, Value(static_cast<double>(i % key_mod)));  // cross-type
    d.left.push_back(std::move(r));
  }
  const std::string pad(96, 'x');
  for (int64_t i = 0; i < build_rows; ++i) {
    Row r{Value(i % key_mod), Value(pad + std::to_string(i)),
          Value(i * 1.5)};
    if (i % 41 == 0) r.Set(0, Value::Null());
    d.right.push_back(std::move(r));
  }
  return d;
}

class GraceJoinTest : public ::testing::Test {
 protected:
  GraceJoinTest() : pool_(8, "test-grace-ap") {
    dir_ = ::testing::TempDir() + "grace_join_test";
    std::filesystem::create_directories(dir_);
  }

  /// Context with a spill budget; threads == 1 leaves the pool out (serial).
  ExecContext Spill(size_t budget, size_t threads,
                    uint64_t hash_mask = ~0ull) {
    ExecContext exec;
    if (threads > 1) {
      exec.pool = &pool_;
      exec.max_parallelism = threads;
    }
    exec.min_parallel_join_build = 1;
    exec.join_hash_mask = hash_mask;
    exec.join_spill_budget_bytes = budget;
    exec.join_spill_dir = dir_;
    return exec;
  }

  size_t SpillFilesInDir() const {
    size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_))
      if (e.path().filename().string().rfind("htap-spill-", 0) == 0) ++n;
    return n;
  }

  ThreadPool pool_;
  std::string dir_;
};

TEST_F(GraceJoinTest, ForcedSpillMatchesNestedLoopAcrossThreadCounts) {
  const Dataset d = SpillDataset();
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  ASSERT_FALSE(reference.empty());
  const size_t build_bytes = EstimateRowsBytes(d.right);
  const size_t budget = build_bytes / 16;
  ASSERT_GT(budget, 0u);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    JoinStats stats;
    const auto out =
        HashJoin(d.left, d.right, 1, 0, Spill(budget, threads), &stats);
    EXPECT_EQ(reference, out) << threads << " threads";
    EXPECT_EQ(stats.parallel, threads > 1);
    EXPECT_GT(stats.partitions, 1u);
    EXPECT_GT(stats.partitions_spilled, 0u) << threads << " threads";
    EXPECT_GT(stats.spill_rows_written, 0u);
    EXPECT_GT(stats.spill_bytes_written, 0u);
    EXPECT_GT(stats.spill_bytes_read, 0u);
    EXPECT_EQ(stats.output_rows, reference.size());
  }
  EXPECT_EQ(SpillFilesInDir(), 0u);  // every run discarded after its join
}

TEST_F(GraceJoinTest, BudgetAboveBuildSizeNeverSpills) {
  const Dataset d = SpillDataset();
  const auto reference = HashJoin(d.left, d.right, 1, 0);
  JoinStats stats;
  const auto out = HashJoin(d.left, d.right, 1, 0,
                            Spill(EstimateRowsBytes(d.right) + 1, 4), &stats);
  EXPECT_EQ(reference, out);
  EXPECT_EQ(stats.partitions_spilled, 0u);
  EXPECT_EQ(stats.spill_rows_written, 0u);
  EXPECT_EQ(SpillFilesInDir(), 0u);
}

TEST_F(GraceJoinTest, MaskedHashesForceRecursiveRepartition) {
  // Zeroing the low 8 hash bits funnels every build row into top-level
  // partition 0 (the partition cap keeps the radix at <= 8 bits), so the
  // oversized partition must re-partition on higher bits to get under
  // budget.
  const Dataset d = SpillDataset();
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  const size_t budget = EstimateRowsBytes(d.right) / 8;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    JoinStats stats;
    const auto out = HashJoin(d.left, d.right, 1, 0,
                              Spill(budget, threads, ~0xFFull), &stats);
    EXPECT_EQ(reference, out) << threads << " threads";
    EXPECT_EQ(stats.partitions_spilled, 1u);
    EXPECT_GE(stats.spill_max_recursion, 1u) << threads << " threads";
  }
  EXPECT_EQ(SpillFilesInDir(), 0u);
}

TEST_F(GraceJoinTest, SingleHotKeyBottomsOutAtRecursionCap) {
  // Every build row carries the same key: no amount of re-partitioning
  // shrinks the partition, so recursion must hit its bound and build the
  // oversized partition anyway.
  Dataset d;
  const std::string pad(200, 'y');
  for (int64_t i = 0; i < 120; ++i)
    d.left.push_back(Row{Value(i), Value(int64_t{7}), Value(i * 0.5)});
  for (int64_t i = 0; i < 300; ++i)
    d.right.push_back(Row{Value(int64_t{7}), Value(pad), Value(i * 1.0)});
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  ASSERT_EQ(reference.size(), d.left.size() * d.right.size());

  JoinStats stats;
  const auto out = HashJoin(d.left, d.right, 1, 0,
                            Spill(EstimateRowsBytes(d.right) / 8, 4), &stats);
  EXPECT_EQ(reference, out);
  EXPECT_GE(stats.spill_max_recursion, 2u);
  EXPECT_EQ(SpillFilesInDir(), 0u);
}

TEST_F(GraceJoinTest, ConcurrentGraceJoinsShareTheSpillDir) {
  const Dataset d = SpillDataset(1200);
  const auto reference = NestedLoopJoin(d.left, d.right, 1, 0);
  const size_t budget = EstimateRowsBytes(d.right) / 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (int iter = 0; iter < 3; ++iter) {
        JoinStats stats;
        const auto out =
            HashJoin(d.left, d.right, 1, 0, Spill(budget, 4), &stats);
        EXPECT_EQ(reference, out);
        EXPECT_GT(stats.partitions_spilled, 0u);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(SpillFilesInDir(), 0u);
}

TEST(JoinPlannerTest, BuildSideChoice) {
  EXPECT_TRUE(ChooseBuildSideLeft(10, 100));
  EXPECT_FALSE(ChooseBuildSideLeft(100, 10));
  EXPECT_FALSE(ChooseBuildSideLeft(10, 10));  // ties keep build-on-right
}

TEST(JoinPlannerTest, GreedyOrderPicksMostSelectiveFirst) {
  // Clause 0 expands (low NDV), clause 1 filters (unique keys, few rows).
  const std::vector<JoinRelEstimate> rels = {{400, 40}, {50, 50}};
  const auto order = ChooseJoinOrder(300, rels, {{}, {}});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(JoinPlannerTest, DependenciesConstrainTheOrder) {
  // Clause 1 would win on cardinality but depends on clause 0's output.
  const std::vector<JoinRelEstimate> rels = {{400, 40}, {50, 50}};
  const auto order = ChooseJoinOrder(300, rels, {{}, {0}});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(JoinPlannerTest, TiesBreakTowardPlanOrder) {
  const std::vector<JoinRelEstimate> rels = {{50, 50}, {50, 50}, {50, 50}};
  const auto order = ChooseJoinOrder(100, rels, {{}, {}, {}});
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

TEST(JoinPlannerTest, CountDistinctKeysIgnoresNullsAndUnifiesNumerics) {
  std::vector<Row> rows;
  rows.push_back(Row{Value(int64_t{1})});
  rows.push_back(Row{Value(1.0)});  // numerically equal to int64 1
  rows.push_back(Row{Value(int64_t{2})});
  rows.push_back(Row{Value::Null()});
  rows.push_back(Row{Value("a")});
  EXPECT_EQ(CountDistinctKeys(rows, 0), 3u);
}

// --------------------------------------------------------------------------
// End-to-end: planner decisions through Database::Query.
// --------------------------------------------------------------------------

Schema FactSchema() {
  return Schema({{"id", Type::kInt64}, {"a_fk", Type::kInt64},
                 {"b_fk", Type::kInt64}, {"amount", Type::kDouble}});
}

Schema DimASchema() {
  // Unique pk, duplicated join key: joining on `key` expands the output.
  return Schema({{"id", Type::kInt64}, {"key", Type::kInt64},
                 {"payload", Type::kString}});
}

Schema DimBSchema() {
  return Schema({{"id", Type::kInt64}, {"name", Type::kString}});
}

std::unique_ptr<Database> OpenDb(size_t threads, size_t spill_budget = 0,
                                 const std::string& spill_dir = "") {
  DatabaseOptions opts;
  opts.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
  opts.background_sync = false;
  opts.parallel_scan_threads = threads;
  opts.parallel_join_min_build_rows = 1;
  opts.join_spill_budget_bytes = spill_budget;
  opts.join_spill_dir = spill_dir;
  auto res = Database::Open(opts);
  EXPECT_TRUE(res.ok());
  return std::move(*res);
}

void PopulateJoinTables(Database* db) {
  ASSERT_TRUE(db->CreateTable("fact", FactSchema()).ok());
  ASSERT_TRUE(db->CreateTable("dim_a", DimASchema()).ok());
  ASSERT_TRUE(db->CreateTable("dim_b", DimBSchema()).ok());
  for (int64_t i = 0; i < 300; ++i)
    ASSERT_TRUE(db->InsertRow("fact", Row{Value(i), Value(i % 40),
                                          Value(i % 50), Value(i * 0.25)})
                    .ok());
  // dim_a: 400 rows, join keys 0..39 each ~10 times — joining it expands.
  for (int64_t i = 0; i < 400; ++i)
    ASSERT_TRUE(db->InsertRow("dim_a", Row{Value(i), Value(i % 40),
                                           Value("a" + std::to_string(i))})
                    .ok());
  // dim_b: 50 rows, unique keys — joining it is selective.
  for (int64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(db->InsertRow("dim_b", Row{Value(i),
                                           Value("b" + std::to_string(i))})
                    .ok());
  ASSERT_TRUE(db->ForceSyncAll().ok());
}

std::vector<Row> ScanAll(Database* db, const std::string& table) {
  QueryPlan p;
  p.table = table;
  auto res = db->Query(p, nullptr);
  EXPECT_TRUE(res.ok());
  return res->rows;
}

TEST(GraceJoinDatabaseTest, BuildSideSwapKeepsNestedLoopOrder) {
  // Probe (fact) much smaller than build (dim_a): the planner must build on
  // the left side, and the result must still equal the conventional
  // build-on-right nested-loop order.
  auto db = OpenDb(4);
  ASSERT_TRUE(db->CreateTable("fact", FactSchema()).ok());
  ASSERT_TRUE(db->CreateTable("dim_a", DimASchema()).ok());
  for (int64_t i = 0; i < 60; ++i)
    ASSERT_TRUE(db->InsertRow("fact", Row{Value(i), Value(i % 40),
                                          Value(i % 50), Value(i * 0.25)})
                    .ok());
  for (int64_t i = 0; i < 3000; ++i)
    ASSERT_TRUE(db->InsertRow("dim_a", Row{Value(i), Value(i % 40),
                                           Value("a" + std::to_string(i))})
                    .ok());
  ASSERT_TRUE(db->ForceSyncAll().ok());

  const auto fact = ScanAll(db.get(), "fact");
  const auto dim = ScanAll(db.get(), "dim_a");
  const auto reference = NestedLoopJoin(fact, dim, 1, 1);

  QueryPlan plan;
  plan.table = "fact";
  plan.has_join = true;
  plan.join_table = "dim_a";
  plan.left_col = 1;
  plan.right_col = 1;
  QueryExecInfo info;
  auto res = db->Query(plan, &info);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(info.join.build_swapped);
  EXPECT_EQ(reference, res->rows);
}

TEST(GraceJoinDatabaseTest, GreedyJoinOrderIsInvisibleInResults) {
  // dim_b (selective) should execute before dim_a (expanding) even though
  // the plan lists dim_a first; the output must equal plan-order
  // nested-loop execution, serial and parallel alike.
  auto serial_db = OpenDb(1);
  auto par_db = OpenDb(4);
  for (auto* db : {serial_db.get(), par_db.get()}) PopulateJoinTables(db);

  const auto fact = ScanAll(serial_db.get(), "fact");
  const auto dim_a = ScanAll(serial_db.get(), "dim_a");
  const auto dim_b = ScanAll(serial_db.get(), "dim_b");
  const auto reference =
      NestedLoopJoin(NestedLoopJoin(fact, dim_a, 1, 1), dim_b, 2, 0);
  ASSERT_FALSE(reference.empty());

  QueryPlan plan;
  plan.table = "fact";
  plan.has_join = true;
  plan.join_table = "dim_a";
  plan.left_col = 1;   // fact.a_fk
  plan.right_col = 1;  // dim_a.key
  plan.joins.push_back(JoinClause{"dim_b", Predicate::True(), 2, 0});

  for (auto* db : {serial_db.get(), par_db.get()}) {
    QueryExecInfo info;
    auto res = db->Query(plan, &info);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(reference, res->rows);
    ASSERT_EQ(info.join_steps.size(), 2u);
    ASSERT_EQ(info.join_order.size(), 2u);
    EXPECT_EQ(info.join_order[0], 1u);  // dim_b first
    EXPECT_EQ(info.join_order[1], 0u);
  }
}

TEST(GraceJoinDatabaseTest, SpillBudgetOptionReachesTheJoin) {
  const std::string dir = ::testing::TempDir() + "grace_join_db_test";
  std::filesystem::create_directories(dir);
  auto plain_db = OpenDb(4);
  auto spill_db = OpenDb(4, /*spill_budget=*/8 * 1024, dir);
  for (auto* db : {plain_db.get(), spill_db.get()}) {
    ASSERT_TRUE(db->CreateTable("fact", FactSchema()).ok());
    ASSERT_TRUE(db->CreateTable("dim_a", DimASchema()).ok());
    for (int64_t i = 0; i < 500; ++i)
      ASSERT_TRUE(db->InsertRow("fact", Row{Value(i), Value(i % 40),
                                            Value(i % 50), Value(i * 0.25)})
                      .ok());
    for (int64_t i = 0; i < 2000; ++i)
      ASSERT_TRUE(
          db->InsertRow("dim_a", Row{Value(i), Value(i % 40),
                                     Value("payload_" + std::to_string(i))})
              .ok());
    ASSERT_TRUE(db->ForceSyncAll().ok());
  }

  QueryPlan plan;
  plan.table = "fact";
  plan.has_join = true;
  plan.join_table = "dim_a";
  plan.left_col = 1;
  plan.right_col = 1;

  QueryExecInfo plain_info, spill_info;
  auto a = plain_db->Query(plan, &plain_info);
  auto b = spill_db->Query(plan, &spill_info);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows, b->rows);
  EXPECT_EQ(plain_info.join.partitions_spilled, 0u);
  EXPECT_GT(spill_info.join.partitions_spilled, 0u);
  EXPECT_GT(spill_info.join.spill_bytes_written, 0u);
  size_t leaked = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().filename().string().rfind("htap-spill-", 0) == 0) ++leaked;
  EXPECT_EQ(leaked, 0u);
}

}  // namespace
}  // namespace htap
