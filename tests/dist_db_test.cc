// Distributed HTAP database tests: single-shard commits, 2PC atomicity
// (including prepare conflicts and failure injection), learner replication
// and the log-delta merge path, analytical-scan freshness semantics.

#include <gtest/gtest.h>

#include "sim/dist_db.h"

namespace htap {
namespace sim {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

WriteOp Put(Key k, int64_t v) {
  return WriteOp{1, ChangeOp::kInsert, k, Row{Value(k), Value(v)}};
}

class DistDbTest : public ::testing::Test {
 protected:
  void MakeDb(int shards, int replicas = 3, bool learners = true) {
    env_ = std::make_unique<SimEnv>(5);
    DistributedDb::Options opts;
    opts.num_shards = shards;
    opts.replicas_per_shard = replicas;
    opts.with_learners = learners;
    opts.learner_merge_interval = 0;  // merges driven explicitly in tests
    db_ = std::make_unique<DistributedDb>(env_.get(), opts);
    db_->RegisterTable(1, TestSchema());
    db_->Bootstrap();
  }

  bool Execute(std::vector<WriteOp> writes, Micros timeout = 10'000'000) {
    bool done = false, ok = false;
    db_->ExecuteTxn(std::move(writes), [&](bool committed) {
      done = true;
      ok = committed;
    });
    const Micros deadline = env_->Now() + timeout;
    while (!done && env_->Now() < deadline)
      env_->RunUntil(env_->Now() + 1000);
    return done && ok;
  }

  /// Keys guaranteed to land on distinct shards.
  std::vector<Key> KeysOnDistinctShards(int n) {
    std::vector<Key> keys;
    std::set<int> shards;
    for (Key k = 1; static_cast<int>(keys.size()) < n && k < 100000; ++k) {
      const int s = db_->ShardOf(k);
      if (shards.insert(s).second) keys.push_back(k);
    }
    return keys;
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<DistributedDb> db_;
};

TEST_F(DistDbTest, SingleShardCommitAndRead) {
  MakeDb(3);
  ASSERT_TRUE(Execute({Put(1, 100)}));
  EXPECT_EQ(db_->committed(), 1u);
  Row out;
  ASSERT_TRUE(db_->Read(1, 1, &out));
  EXPECT_EQ(out.Get(1).AsInt64(), 100);
}

TEST_F(DistDbTest, UpdateAndDelete) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  ASSERT_TRUE(Execute({WriteOp{1, ChangeOp::kUpdate, 1,
                               Row{Value(int64_t{1}), Value(int64_t{2})}}}));
  Row out;
  ASSERT_TRUE(db_->Read(1, 1, &out));
  EXPECT_EQ(out.Get(1).AsInt64(), 2);
  ASSERT_TRUE(Execute({WriteOp{1, ChangeOp::kDelete, 1, Row{}}}));
  EXPECT_FALSE(db_->Read(1, 1, &out));
}

TEST_F(DistDbTest, MultiShardTwoPhaseCommitIsAtomic) {
  MakeDb(4);
  const auto keys = KeysOnDistinctShards(3);
  ASSERT_EQ(keys.size(), 3u);
  std::vector<WriteOp> writes;
  for (Key k : keys) writes.push_back(Put(k, k * 10));
  ASSERT_TRUE(Execute(std::move(writes)));
  for (Key k : keys) {
    Row out;
    ASSERT_TRUE(db_->Read(1, k, &out)) << k;
    EXPECT_EQ(out.Get(1).AsInt64(), k * 10);
  }
}

TEST_F(DistDbTest, PreparedStateIsInvisibleUntilCommit) {
  // A lock held by an in-flight prepare makes a second 2PC touching the
  // same key abort (all-or-nothing), never partially apply.
  MakeDb(4);
  const auto keys = KeysOnDistinctShards(2);
  // Issue two overlapping multi-shard transactions back-to-back without
  // draining the simulator in between.
  bool done1 = false, ok1 = false, done2 = false, ok2 = false;
  db_->ExecuteTxn({Put(keys[0], 1), Put(keys[1], 1)}, [&](bool c) {
    done1 = true;
    ok1 = c;
  });
  db_->ExecuteTxn({Put(keys[0], 2), Put(keys[1], 2)}, [&](bool c) {
    done2 = true;
    ok2 = c;
  });
  const Micros deadline = env_->Now() + 30'000'000;
  while (!(done1 && done2) && env_->Now() < deadline)
    env_->RunUntil(env_->Now() + 1000);
  ASSERT_TRUE(done1 && done2);
  // At least one commits; if both, they serialized. Values must agree
  // across the two keys (atomicity: no interleaved halves).
  Row a, b;
  ASSERT_TRUE(db_->Read(1, keys[0], &a));
  ASSERT_TRUE(db_->Read(1, keys[1], &b));
  EXPECT_EQ(a.Get(1).AsInt64(), b.Get(1).AsInt64());
  EXPECT_TRUE(ok1 || ok2);
}

TEST_F(DistDbTest, LearnerReplicatesAndMerges) {
  MakeDb(2);
  for (Key k = 1; k <= 20; ++k) ASSERT_TRUE(Execute({Put(k, k)}));
  // Replication has happened (commits waited on quorum, learners lag only
  // by network); drain the wire then merge.
  env_->RunUntil(env_->Now() + 500000);
  EXPECT_GT(db_->LearnerReplicatedCsn(1), 0u);
  db_->SyncLearners();
  const auto rows =
      db_->AnalyticalScan(1, Predicate::True(), {}, /*include_delta=*/false);
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(db_->LearnerMergedCsn(1), db_->LearnerReplicatedCsn(1));
}

TEST_F(DistDbTest, DeltaUnionSeesUnmergedChanges) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  env_->RunUntil(env_->Now() + 500000);
  // Without a merge, the pure column scan is blind; the log-delta union
  // sees the row — exactly the freshness trade-off of Table 2's AP row.
  EXPECT_EQ(db_->AnalyticalScan(1, Predicate::True(), {}, false).size(), 0u);
  EXPECT_EQ(db_->AnalyticalScan(1, Predicate::True(), {}, true).size(), 1u);
}

TEST_F(DistDbTest, FreshnessLagShrinksAfterMerge) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  ASSERT_TRUE(Execute({Put(2, 2)}));
  env_->RunUntil(env_->Now() + 500000);
  const CSN before = db_->LearnerMergedCsn(1);
  db_->SyncLearners();
  EXPECT_GT(db_->LearnerMergedCsn(1), before);
}

TEST_F(DistDbTest, SurvivesShardLeaderCrash) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  RaftNode* leader = db_->shard_group(db_->ShardOf(2))->leader();
  ASSERT_NE(leader, nullptr);
  leader->Crash();
  env_->RunUntil(env_->Now() + 1'000'000);  // failover
  EXPECT_TRUE(Execute({Put(2, 2)}, 30'000'000));
  Row out;
  EXPECT_TRUE(db_->Read(1, 2, &out));
}

TEST_F(DistDbTest, ScanStatsAggregateAcrossShards) {
  MakeDb(3);
  for (Key k = 1; k <= 30; ++k) ASSERT_TRUE(Execute({Put(k, k)}));
  env_->RunUntil(env_->Now() + 500000);
  db_->SyncLearners();
  ScanStats stats;
  db_->AnalyticalScan(1, Predicate::True(), {}, true, &stats);
  EXPECT_EQ(stats.main_rows_emitted, 30u);
  EXPECT_GE(stats.groups_total, 3u);  // at least one group per shard
}

TEST_F(DistDbTest, ThroughputScalesWithShardsInVirtualTime) {
  // The Table 1 TP-scalability claim in miniature: more shards means more
  // simulated CPUs appending Raft entries, so the same offered load
  // finishes in less virtual time.
  auto run = [&](int shards) {
    MakeDb(shards);
    const Micros start = env_->Now();
    constexpr int kTxns = 60;
    int done = 0;
    for (int i = 0; i < kTxns; ++i)
      db_->ExecuteTxn({Put(i + 1, i)}, [&](bool ok) { done += ok ? 1 : 0; });
    while (done < kTxns) env_->RunUntil(env_->Now() + 1000);
    return env_->Now() - start;
  };
  const Micros t1 = run(1);
  const Micros t4 = run(4);
  EXPECT_LT(t4, t1);
}

}  // namespace
}  // namespace sim
}  // namespace htap
