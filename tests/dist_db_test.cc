// Distributed HTAP database tests: single-shard commits, 2PC atomicity
// (including prepare conflicts and failure injection), learner replication
// and the log-delta merge path, analytical-scan freshness semantics.

#include <gtest/gtest.h>

#include "sim/dist_db.h"
#include "sim/workload.h"

namespace htap {
namespace sim {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::kInt64}, {"v", Type::kInt64}});
}

WriteOp Put(Key k, int64_t v) {
  return WriteOp{1, ChangeOp::kInsert, k, Row{Value(k), Value(v)}};
}

class DistDbTest : public ::testing::Test {
 protected:
  void MakeDb(int shards, int replicas = 3, bool learners = true) {
    env_ = std::make_unique<SimEnv>(5);
    DistributedDb::Options opts;
    opts.num_shards = shards;
    opts.replicas_per_shard = replicas;
    opts.with_learners = learners;
    opts.learner_merge_interval = 0;  // merges driven explicitly in tests
    db_ = std::make_unique<DistributedDb>(env_.get(), opts);
    db_->RegisterTable(1, TestSchema());
    db_->Bootstrap();
  }

  bool Execute(std::vector<WriteOp> writes, Micros timeout = 10'000'000) {
    bool done = false, ok = false;
    db_->ExecuteTxn(std::move(writes), [&](bool committed) {
      done = true;
      ok = committed;
    });
    const Micros deadline = env_->Now() + timeout;
    while (!done && env_->Now() < deadline)
      env_->RunUntil(env_->Now() + 1000);
    return done && ok;
  }

  /// Keys guaranteed to land on distinct shards.
  std::vector<Key> KeysOnDistinctShards(int n) {
    std::vector<Key> keys;
    std::set<int> shards;
    for (Key k = 1; static_cast<int>(keys.size()) < n && k < 100000; ++k) {
      const int s = db_->ShardOf(k);
      if (shards.insert(s).second) keys.push_back(k);
    }
    return keys;
  }

  /// Heals every fault and pumps the sim until the cluster converges
  /// (every log applied everywhere, no outstanding 2PC decision).
  bool HealAndConverge(Micros budget = 60'000'000) {
    db_->SetMessageLoss(0);
    db_->HealNetwork();
    db_->RestartDeadNodes();
    const Micros deadline = env_->Now() + budget;
    while (!db_->Converged() && env_->Now() < deadline)
      env_->RunUntil(env_->Now() + 10'000);
    return db_->Converged();
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<DistributedDb> db_;
};

TEST_F(DistDbTest, SingleShardCommitAndRead) {
  MakeDb(3);
  ASSERT_TRUE(Execute({Put(1, 100)}));
  EXPECT_EQ(db_->committed(), 1u);
  Row out;
  ASSERT_TRUE(db_->Read(1, 1, &out));
  EXPECT_EQ(out.Get(1).AsInt64(), 100);
}

TEST_F(DistDbTest, UpdateAndDelete) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  ASSERT_TRUE(Execute({WriteOp{1, ChangeOp::kUpdate, 1,
                               Row{Value(int64_t{1}), Value(int64_t{2})}}}));
  Row out;
  ASSERT_TRUE(db_->Read(1, 1, &out));
  EXPECT_EQ(out.Get(1).AsInt64(), 2);
  ASSERT_TRUE(Execute({WriteOp{1, ChangeOp::kDelete, 1, Row{}}}));
  EXPECT_FALSE(db_->Read(1, 1, &out));
}

TEST_F(DistDbTest, MultiShardTwoPhaseCommitIsAtomic) {
  MakeDb(4);
  const auto keys = KeysOnDistinctShards(3);
  ASSERT_EQ(keys.size(), 3u);
  std::vector<WriteOp> writes;
  for (Key k : keys) writes.push_back(Put(k, k * 10));
  ASSERT_TRUE(Execute(std::move(writes)));
  for (Key k : keys) {
    Row out;
    ASSERT_TRUE(db_->Read(1, k, &out)) << k;
    EXPECT_EQ(out.Get(1).AsInt64(), k * 10);
  }
}

TEST_F(DistDbTest, PreparedStateIsInvisibleUntilCommit) {
  // A lock held by an in-flight prepare makes a second 2PC touching the
  // same key abort (all-or-nothing), never partially apply.
  MakeDb(4);
  const auto keys = KeysOnDistinctShards(2);
  // Issue two overlapping multi-shard transactions back-to-back without
  // draining the simulator in between.
  bool done1 = false, ok1 = false, done2 = false, ok2 = false;
  db_->ExecuteTxn({Put(keys[0], 1), Put(keys[1], 1)}, [&](bool c) {
    done1 = true;
    ok1 = c;
  });
  db_->ExecuteTxn({Put(keys[0], 2), Put(keys[1], 2)}, [&](bool c) {
    done2 = true;
    ok2 = c;
  });
  const Micros deadline = env_->Now() + 30'000'000;
  while (!(done1 && done2) && env_->Now() < deadline)
    env_->RunUntil(env_->Now() + 1000);
  ASSERT_TRUE(done1 && done2);
  // At least one commits; if both, they serialized. Values must agree
  // across the two keys (atomicity: no interleaved halves).
  Row a, b;
  ASSERT_TRUE(db_->Read(1, keys[0], &a));
  ASSERT_TRUE(db_->Read(1, keys[1], &b));
  EXPECT_EQ(a.Get(1).AsInt64(), b.Get(1).AsInt64());
  EXPECT_TRUE(ok1 || ok2);
}

TEST_F(DistDbTest, LearnerReplicatesAndMerges) {
  MakeDb(2);
  for (Key k = 1; k <= 20; ++k) ASSERT_TRUE(Execute({Put(k, k)}));
  // Replication has happened (commits waited on quorum, learners lag only
  // by network); drain the wire then merge.
  env_->RunUntil(env_->Now() + 500000);
  EXPECT_GT(db_->LearnerReplicatedCsn(1), 0u);
  db_->SyncLearners();
  const auto rows =
      db_->AnalyticalScan(1, Predicate::True(), {}, /*include_delta=*/false);
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(db_->LearnerMergedCsn(1), db_->LearnerReplicatedCsn(1));
}

TEST_F(DistDbTest, DeltaUnionSeesUnmergedChanges) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  env_->RunUntil(env_->Now() + 500000);
  // Without a merge, the pure column scan is blind; the log-delta union
  // sees the row — exactly the freshness trade-off of Table 2's AP row.
  EXPECT_EQ(db_->AnalyticalScan(1, Predicate::True(), {}, false).size(), 0u);
  EXPECT_EQ(db_->AnalyticalScan(1, Predicate::True(), {}, true).size(), 1u);
}

TEST_F(DistDbTest, FreshnessLagShrinksAfterMerge) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  ASSERT_TRUE(Execute({Put(2, 2)}));
  env_->RunUntil(env_->Now() + 500000);
  const CSN before = db_->LearnerMergedCsn(1);
  db_->SyncLearners();
  EXPECT_GT(db_->LearnerMergedCsn(1), before);
}

TEST_F(DistDbTest, SurvivesShardLeaderCrash) {
  MakeDb(2);
  ASSERT_TRUE(Execute({Put(1, 1)}));
  RaftNode* leader = db_->shard_group(db_->ShardOf(2))->leader();
  ASSERT_NE(leader, nullptr);
  leader->Crash();
  env_->RunUntil(env_->Now() + 1'000'000);  // failover
  EXPECT_TRUE(Execute({Put(2, 2)}, 30'000'000));
  Row out;
  EXPECT_TRUE(db_->Read(1, 2, &out));
}

TEST_F(DistDbTest, ScanStatsAggregateAcrossShards) {
  MakeDb(3);
  for (Key k = 1; k <= 30; ++k) ASSERT_TRUE(Execute({Put(k, k)}));
  env_->RunUntil(env_->Now() + 500000);
  db_->SyncLearners();
  ScanStats stats;
  db_->AnalyticalScan(1, Predicate::True(), {}, true, &stats);
  EXPECT_EQ(stats.main_rows_emitted, 30u);
  EXPECT_GE(stats.groups_total, 3u);  // at least one group per shard
}

TEST_F(DistDbTest, ThroughputScalesWithShardsInVirtualTime) {
  // The Table 1 TP-scalability claim in miniature: more shards means more
  // simulated CPUs appending Raft entries, so the same offered load
  // finishes in less virtual time.
  auto run = [&](int shards) {
    MakeDb(shards);
    const Micros start = env_->Now();
    constexpr int kTxns = 600;
    int done = 0;
    for (int i = 0; i < kTxns; ++i)
      db_->ExecuteTxn({Put(i + 1, i)}, [&](bool ok) { done += ok ? 1 : 0; });
    while (done < kTxns) env_->RunUntil(env_->Now() + 1000);
    return env_->Now() - start;
  };
  const Micros t1 = run(1);
  const Micros t4 = run(4);
  EXPECT_LT(t4, t1);
}

TEST_F(DistDbTest, LeaderCrashMidTwoPhaseCommitStaysAtomic) {
  // Crash a participant's leader while the prepare is on the wire: the
  // gateway retries against the new leader, the resolver drives phase 2,
  // and the outcome is atomic either way — never half a transaction.
  MakeDb(3);
  const auto keys = KeysOnDistinctShards(2);
  ASSERT_EQ(keys.size(), 2u);
  bool done = false, committed = false;
  db_->ExecuteTxn({Put(keys[0], 7), Put(keys[1], 7)}, [&](bool c) {
    done = true;
    committed = c;
  });
  ASSERT_NE(db_->CrashShardLeader(db_->ShardOf(keys[1])), -1);
  const Micros deadline = env_->Now() + 30'000'000;
  while (!done && env_->Now() < deadline) env_->RunUntil(env_->Now() + 1000);
  ASSERT_TRUE(done);
  ASSERT_TRUE(HealAndConverge());
  Row a, b;
  const bool has_a = db_->Read(1, keys[0], &a);
  const bool has_b = db_->Read(1, keys[1], &b);
  EXPECT_EQ(has_a, committed);
  EXPECT_EQ(has_b, committed);
  // Committed state also survived to the learners.
  EXPECT_EQ(db_->LearnerRows(1), db_->LeaderRows(1));
}

TEST_F(DistDbTest, PartitionDuringPrepareEventuallyResolves) {
  // Isolate a participant's leader mid-2PC: the prepare times out and
  // retries; after the heal the decision is applied on every shard and no
  // lock is left behind.
  MakeDb(3);
  const auto keys = KeysOnDistinctShards(2);
  bool done = false, committed = false;
  db_->ExecuteTxn({Put(keys[0], 9), Put(keys[1], 9)}, [&](bool c) {
    done = true;
    committed = c;
  });
  const int victim = db_->ShardOf(keys[1]);
  RaftNode* leader = db_->shard_group(victim)->leader();
  ASSERT_NE(leader, nullptr);
  db_->IsolateNode(victim, leader->id());
  env_->RunUntil(env_->Now() + 500'000);  // let timeouts/elections play out
  ASSERT_TRUE(HealAndConverge());
  const Micros deadline = env_->Now() + 30'000'000;
  while (!done && env_->Now() < deadline) env_->RunUntil(env_->Now() + 1000);
  ASSERT_TRUE(done);
  EXPECT_EQ(db_->unresolved_txns(), 0u);
  Row a, b;
  EXPECT_EQ(db_->Read(1, keys[0], &a), committed);
  EXPECT_EQ(db_->Read(1, keys[1], &b), committed);
}

TEST_F(DistDbTest, MessageLossLosesNoCommittedUpdates) {
  // Under 5% message loss, every transaction the gateway reported as
  // committed must be present on the leaders AND on the learners after the
  // network heals — retries may duplicate log entries, but idempotent
  // commands apply once and nothing committed is lost.
  MakeDb(2);
  db_->SetMessageLoss(0.05);
  std::set<Key> committed_keys;
  int done = 0;
  constexpr int kTxns = 40;
  for (int i = 0; i < kTxns; ++i) {
    const Key k = 1000 + i;
    db_->ExecuteTxn({Put(k, i)}, [&, k](bool c) {
      ++done;
      if (c) committed_keys.insert(k);
    });
  }
  const Micros deadline = env_->Now() + 60'000'000;
  while (done < kTxns && env_->Now() < deadline)
    env_->RunUntil(env_->Now() + 1000);
  ASSERT_EQ(done, kTxns);
  ASSERT_TRUE(HealAndConverge());
  db_->SyncLearners();
  const auto leader_rows = db_->LeaderRows(1);
  EXPECT_EQ(db_->LearnerRows(1), leader_rows);
  std::set<Key> leader_keys;
  for (const auto& [k, row] : leader_rows) leader_keys.insert(k);
  for (Key k : committed_keys)
    EXPECT_TRUE(leader_keys.count(k)) << "lost committed key " << k;
}

TEST_F(DistDbTest, ClusterStatsCountersAreCoherent) {
  MakeDb(3);
  const auto keys = KeysOnDistinctShards(2);
  ASSERT_TRUE(Execute({Put(500, 1)}));
  ASSERT_TRUE(Execute({Put(keys[0], 2), Put(keys[1], 2)}));
  const ClusterStats s = db_->GetClusterStats();
  EXPECT_EQ(s.committed, db_->committed());
  EXPECT_EQ(s.single_shard_txns, 1u);
  EXPECT_EQ(s.multi_shard_txns, 1u);
  EXPECT_EQ(s.commit_latency.total, s.committed);
  EXPECT_GT(s.commit_latency.Quantile(0.99), 0u);
  EXPECT_EQ(s.shards.size(), 3u);
  uint64_t single = 0, tpc = 0;
  for (const auto& sh : s.shards) {
    EXPECT_NE(sh.leader, -1);
    single += sh.single_shard_commits;
    tpc += sh.tpc_commits;
  }
  EXPECT_EQ(single, 1u);
  EXPECT_EQ(tpc, 2u);  // one 2PC commit applied on two shards
  ASSERT_EQ(s.tables.size(), 1u);
  EXPECT_GT(s.tables[0].leader_csn, 0u);
}

TEST_F(DistDbTest, WorkloadIsDeterministicAcrossRuns) {
  // Identical seeds produce byte-identical workload outcomes — the property
  // the bench_scaleout determinism gate (ci.sh) relies on.
  auto run = [](uint64_t seed) {
    SimEnv env(seed);
    DistributedDb::Options opts;
    opts.num_shards = 3;
    DistributedDb db(&env, opts);
    WorkloadOptions wopts;
    wopts.clients = 8;
    wopts.seed = 99;
    TpccWorkload w(&db, wopts);
    w.RegisterTables();
    db.Bootstrap();
    w.Load();
    w.Run(300'000);
    return w.stats();
  };
  const WorkloadStats a = run(7), b = run(7);
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_EQ(a.aborted(), b.aborted());
  EXPECT_EQ(a.cross_shard_issued, b.cross_shard_issued);
  EXPECT_EQ(a.duration_micros, b.duration_micros);
  EXPECT_GT(a.committed(), 0u);
  EXPECT_GT(a.new_orders_committed, 0u);
  EXPECT_GT(a.payments_committed, 0u);
  EXPECT_GT(a.cross_shard_issued, 0u);
  EXPECT_GT(a.TpmC(), 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace htap
