// Raft tests: election safety, log replication and commitment, learner
// catch-up, leader failover with durability, partition behavior, and a
// randomized crash/restart property test for the core safety invariant
// (committed entries are never lost or reordered).

#include <gtest/gtest.h>

#include <map>

#include "sim/raft.h"

namespace htap {
namespace sim {
namespace {

struct AppliedLog {
  std::map<NodeId, std::vector<std::string>> per_node;
};

class RaftTest : public ::testing::Test {
 protected:
  void MakeGroup(int voters, int learners = 0, uint64_t seed = 42) {
    env_ = std::make_unique<SimEnv>(seed);
    net_ = std::make_unique<SimNetwork>(
        env_.get(),
        SimNetwork::Options{.base_latency_micros = 200, .jitter_micros = 100});
    std::vector<NodeId> voter_ids, learner_ids;
    for (int i = 0; i < voters; ++i) voter_ids.push_back(i);
    for (int i = 0; i < learners; ++i) learner_ids.push_back(100 + i);
    group_ = std::make_unique<RaftGroup>(
        env_.get(), net_.get(), voter_ids, learner_ids, RaftConfig{},
        [this](NodeId id) -> RaftApplyFn {
          return [this, id](uint64_t, const std::string& payload) {
            applied_.per_node[id].push_back(payload);
          };
        });
  }

  /// Proposes through the current leader, retrying across elections.
  bool ProposeAndCommit(const std::string& payload,
                        Micros timeout = 5'000'000) {
    const Micros deadline = env_->Now() + timeout;
    while (env_->Now() < deadline) {
      RaftNode* leader = group_->WaitForLeader();
      if (leader == nullptr) return false;
      bool done = false, ok = false;
      if (!leader->Propose(payload, [&](bool committed, uint64_t) {
            done = true;
            ok = committed;
          })) {
        env_->RunUntil(env_->Now() + 10000);
        continue;
      }
      while (!done && env_->Now() < deadline)
        env_->RunUntil(env_->Now() + 1000);
      if (done && ok) return true;
    }
    return false;
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<RaftGroup> group_;
  AppliedLog applied_;
};

TEST_F(RaftTest, ElectsExactlyOneLeader) {
  MakeGroup(3);
  RaftNode* leader = group_->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  int leaders = 0;
  for (NodeId id : group_->voter_ids())
    if (group_->node(id)->IsLeader()) ++leaders;
  EXPECT_EQ(leaders, 1);
}

TEST_F(RaftTest, SingleVoterGroupSelfElectsAndCommits) {
  MakeGroup(1);
  ASSERT_NE(group_->WaitForLeader(), nullptr);
  EXPECT_TRUE(ProposeAndCommit("solo"));
  EXPECT_EQ(applied_.per_node[0], (std::vector<std::string>{"solo"}));
}

TEST_F(RaftTest, ReplicatesToAllVoters) {
  MakeGroup(3);
  ASSERT_TRUE(ProposeAndCommit("a"));
  ASSERT_TRUE(ProposeAndCommit("b"));
  env_->RunUntil(env_->Now() + 100000);  // let followers apply
  for (NodeId id : group_->voter_ids())
    EXPECT_EQ(applied_.per_node[id], (std::vector<std::string>{"a", "b"}))
        << "node " << id;
}

TEST_F(RaftTest, LearnerReceivesLogButNeverVotesOrLeads) {
  MakeGroup(3, /*learners=*/1);
  ASSERT_TRUE(ProposeAndCommit("x"));
  env_->RunUntil(env_->Now() + 200000);
  EXPECT_EQ(applied_.per_node[100], (std::vector<std::string>{"x"}));
  EXPECT_EQ(group_->node(100)->role(), RaftRole::kLearner);
}

TEST_F(RaftTest, CommitRequiresMajority) {
  MakeGroup(3);
  RaftNode* leader = group_->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  // Cut the leader off from both followers: no quorum, no commit.
  for (NodeId id : group_->voter_ids())
    if (id != leader->id()) net_->Partition(leader->id(), id);
  bool done = false;
  leader->Propose("isolated", [&](bool, uint64_t) { done = true; });
  env_->RunUntil(env_->Now() + 100000);
  EXPECT_EQ(leader->commit_index(), 0u);
  net_->HealAll();
}

TEST_F(RaftTest, FailoverPreservesCommittedEntries) {
  MakeGroup(3);
  ASSERT_TRUE(ProposeAndCommit("before-crash"));
  RaftNode* old_leader = group_->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);
  const NodeId old_id = old_leader->id();
  old_leader->Crash();

  // A new leader emerges among the survivors and accepts new entries.
  env_->RunUntil(env_->Now() + 500000);
  RaftNode* new_leader = group_->WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), old_id);
  ASSERT_TRUE(ProposeAndCommit("after-crash"));

  // The old leader restarts and catches up, keeping its durable prefix.
  group_->node(old_id)->Restart();
  env_->RunUntil(env_->Now() + 1000000);
  EXPECT_EQ(applied_.per_node[old_id],
            (std::vector<std::string>{"before-crash", "after-crash"}));
}

TEST_F(RaftTest, PartitionedMinorityLeaderStepsDown) {
  MakeGroup(5);
  RaftNode* leader = group_->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const NodeId old_id = leader->id();
  // Isolate the leader with one follower (minority side).
  std::vector<NodeId> minority = {old_id};
  for (NodeId id : group_->voter_ids()) {
    if (id != old_id && minority.size() < 2) minority.push_back(id);
  }
  for (NodeId a : minority)
    for (NodeId b : group_->voter_ids())
      if (std::find(minority.begin(), minority.end(), b) == minority.end())
        net_->Partition(a, b);

  env_->RunUntil(env_->Now() + 2'000'000);
  // Majority side elected a new leader with a higher term.
  RaftNode* new_leader = nullptr;
  for (NodeId id : group_->voter_ids()) {
    if (std::find(minority.begin(), minority.end(), id) == minority.end() &&
        group_->node(id)->IsLeader())
      new_leader = group_->node(id);
  }
  ASSERT_NE(new_leader, nullptr);
  // Heal: the old leader must step down to the newer term.
  net_->HealAll();
  env_->RunUntil(env_->Now() + 1'000'000);
  int leaders = 0;
  for (NodeId id : group_->voter_ids())
    if (group_->node(id)->IsLeader()) ++leaders;
  EXPECT_EQ(leaders, 1);
  EXPECT_TRUE(ProposeAndCommit("post-heal"));
}

TEST_F(RaftTest, AppliesInLogOrderExactlyOnce) {
  MakeGroup(3);
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(ProposeAndCommit("e" + std::to_string(i)));
  env_->RunUntil(env_->Now() + 500000);
  for (NodeId id : group_->voter_ids()) {
    const auto& log = applied_.per_node[id];
    ASSERT_EQ(log.size(), 30u) << "node " << id;
    for (int i = 0; i < 30; ++i)
      EXPECT_EQ(log[static_cast<size_t>(i)], "e" + std::to_string(i));
  }
}

// Safety property under randomized crashes/restarts: every node's applied
// sequence is a prefix of the full committed sequence (no loss, no
// reorder, no divergence).
TEST_F(RaftTest, PropertySafetyUnderRandomCrashes) {
  MakeGroup(3, /*learners=*/1, /*seed=*/77);
  Random chaos(123);
  std::vector<std::string> committed;

  for (int round = 0; round < 40; ++round) {
    // Random crash or restart of a random voter (never two down at once,
    // so quorum survives and progress is possible).
    if (chaos.Bernoulli(0.3)) {
      int down = 0;
      for (NodeId id : group_->voter_ids())
        if (!group_->node(id)->alive()) ++down;
      const NodeId victim = static_cast<NodeId>(chaos.Uniform(3));
      RaftNode* node = group_->node(victim);
      if (node->alive() && down == 0) {
        node->Crash();
      } else if (!node->alive()) {
        node->Restart();
      }
    }
    const std::string payload = "p" + std::to_string(round);
    if (ProposeAndCommit(payload, 3'000'000)) committed.push_back(payload);
  }
  // Bring everyone back and let the cluster settle.
  for (NodeId id : group_->voter_ids())
    if (!group_->node(id)->alive()) group_->node(id)->Restart();
  env_->RunUntil(env_->Now() + 3'000'000);
  ASSERT_TRUE(ProposeAndCommit("final"));
  committed.push_back("final");
  env_->RunUntil(env_->Now() + 2'000'000);

  EXPECT_GT(committed.size(), 10u);  // chaos still allowed real progress
  for (const auto& [id, log] : applied_.per_node) {
    ASSERT_LE(log.size(), committed.size()) << "node " << id;
    for (size_t i = 0; i < log.size(); ++i)
      EXPECT_EQ(log[i], committed[i]) << "node " << id << " diverged at " << i;
    // Everyone fully caught up after the final settle.
    EXPECT_EQ(log.size(), committed.size()) << "node " << id;
  }
}

}  // namespace
}  // namespace sim
}  // namespace htap
