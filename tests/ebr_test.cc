// Epoch-based reclamation (common/ebr.h): grace-period arithmetic, pinning,
// re-entrancy, and concurrent retire/pin churn (the ASan/TSan target).

#include "common/ebr.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace htap {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>* c) : counter(c) {}
  ~Tracked() { counter->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter;
};

void DeleteTracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(EbrTest, DrainOnQuiescence) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  for (int i = 0; i < 10; ++i) mgr.Retire(new Tracked(&freed), &DeleteTracked);
  EXPECT_EQ(mgr.limbo_size(), 10u);
  EXPECT_EQ(freed.load(), 0);
  // With no pinned reader, three advances walk the window past every bucket.
  mgr.Quiesce();
  EXPECT_EQ(freed.load(), 10);
  EXPECT_EQ(mgr.limbo_size(), 0u);
  EXPECT_EQ(mgr.reclaimed(), 10u);
}

TEST(EbrTest, NoReclamationWhilePinned) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochManager::Guard g(mgr);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  // Retire in the epoch the reader has pinned: the reader could still hold
  // a reference, so nothing may be freed while it stays pinned. The epoch
  // can advance at most once past a pinned reader, which is exactly one
  // advance short of freeing this generation.
  mgr.Retire(new Tracked(&freed), &DeleteTracked);
  for (int i = 0; i < 10; ++i) mgr.Quiesce();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(mgr.limbo_size(), 1u);

  release.store(true, std::memory_order_release);
  reader.join();
  mgr.Quiesce();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EbrTest, NestedPinsShareOneSlot) {
  EpochManager mgr;
  // Outlives the guard block: the retired Tracked is only destroyed by the
  // final Quiesce after the outer guard unpins.
  std::atomic<int> freed{0};
  {
    EpochManager::Guard outer(mgr);
    {
      EpochManager::Guard inner(mgr);
      EXPECT_EQ(mgr.registered_threads(), 1u);
    }
    // The inner guard's destruction must not unpin the outer scope: an
    // advance-blocking retire check still sees us pinned.
    mgr.Retire(new Tracked(&freed), &DeleteTracked);
    for (int i = 0; i < 10; ++i) mgr.Quiesce();
    EXPECT_EQ(freed.load(), 0);
  }
  mgr.Quiesce();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

TEST(EbrTest, ManagerDestructorFreesLeftovers) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    for (int i = 0; i < 5; ++i)
      mgr.Retire(new Tracked(&freed), &DeleteTracked);
    // No Quiesce: the destructor must sweep all three limbo generations.
  }
  EXPECT_EQ(freed.load(), 5);
}

TEST(EbrTest, EpochAdvancesOnlyWhenAllReadersCaughtUp) {
  EpochManager mgr;
  const uint64_t e0 = mgr.epoch();
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), e0 + 1);

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochManager::Guard g(mgr);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  // Reader pinned the current epoch: one advance succeeds (reader is at the
  // previous epoch's successor... it pinned e0+1, so advancing to e0+2 needs
  // the reader at e0+1 — which it is), the next is blocked until it unpins.
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_FALSE(mgr.TryAdvance());
  release.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(mgr.TryAdvance());
}

// Concurrent churn: writers retire tracked objects while readers pin/unpin.
// Run under ASan (use-after-free if a grace period is miscounted) and TSan.
TEST(EbrTest, ConcurrentRetireAndPinChurn) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  std::atomic<bool> stop{false};
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kPerWriter = 2000;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) {
        // Simulate an unlink + retire from inside a reader section, the way
        // the B+-tree SMO path does it.
        EpochManager::Guard g(mgr);
        auto* obj = new Tracked(&freed);
        mgr.Retire(obj, &DeleteTracked);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard g(mgr);
        std::this_thread::yield();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t r = kWriters; r < threads.size(); ++r) threads[r].join();

  for (int i = 0; i < 10; ++i) mgr.Quiesce();
  EXPECT_EQ(freed.load(), kWriters * kPerWriter);
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

}  // namespace
}  // namespace htap
