// B+-tree tests: basic operations, range scans, and a randomized
// property test against std::map across insert/overwrite/erase mixes.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "index/btree.h"

namespace htap {
namespace {

TEST(BTreeTest, InsertLookup) {
  BTree t(8);
  EXPECT_TRUE(t.Insert(5, 50));
  EXPECT_TRUE(t.Insert(3, 30));
  uint64_t v = 0;
  ASSERT_TRUE(t.Lookup(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_FALSE(t.Lookup(99, &v));
}

TEST(BTreeTest, InsertOverwrites) {
  BTree t(8);
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 11));  // existing key: payload replaced
  uint64_t v;
  ASSERT_TRUE(t.Lookup(1, &v));
  EXPECT_EQ(v, 11u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, EraseExistingAndMissing) {
  BTree t(8);
  t.Insert(1, 10);
  EXPECT_TRUE(t.Erase(1));
  EXPECT_FALSE(t.Erase(1));
  uint64_t v;
  EXPECT_FALSE(t.Lookup(1, &v));
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree t(4);  // tiny order to force deep trees
  for (Key k = 0; k < 1000; ++k) t.Insert(k, static_cast<uint64_t>(k) * 2);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GT(t.height(), 2);
  for (Key k = 0; k < 1000; ++k) {
    uint64_t v;
    ASSERT_TRUE(t.Lookup(k, &v)) << k;
    EXPECT_EQ(v, static_cast<uint64_t>(k) * 2);
  }
}

TEST(BTreeTest, ScanInOrder) {
  BTree t(8);
  for (Key k = 100; k > 0; --k) t.Insert(k, static_cast<uint64_t>(k));
  Key prev = 0;
  size_t count = 0;
  t.ScanAll([&](Key k, uint64_t) {
    EXPECT_GT(k, prev);
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 100u);
}

TEST(BTreeTest, RangeScanBounds) {
  BTree t(6);
  for (Key k = 0; k < 100; k += 2) t.Insert(k, 0);
  std::vector<Key> seen;
  t.Scan(11, 21, [&](Key k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<Key>{12, 14, 16, 18, 20}));
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree t(6);
  for (Key k = 0; k < 100; ++k) t.Insert(k, 0);
  size_t visited = 0;
  t.ScanAll([&](Key, uint64_t) { return ++visited < 10; });
  EXPECT_EQ(visited, 10u);
}

TEST(BTreeTest, NegativeKeys) {
  BTree t(8);
  for (Key k = -50; k <= 50; ++k) t.Insert(k, static_cast<uint64_t>(k + 50));
  uint64_t v;
  ASSERT_TRUE(t.Lookup(-50, &v));
  EXPECT_EQ(v, 0u);
  Key prev = -51;
  t.ScanAll([&](Key k, uint64_t) {
    EXPECT_EQ(k, prev + 1);
    prev = k;
    return true;
  });
  EXPECT_EQ(prev, 50);
}

// Property: after any random mix of insert/overwrite/erase, contents and
// iteration order match std::map exactly. Parameterized over tree order.
class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, MatchesStdMapUnderRandomOps) {
  const int order = GetParam();
  BTree t(order);
  std::map<Key, uint64_t> ref;
  Random rng(static_cast<uint64_t>(order) * 7919 + 1);

  for (int i = 0; i < 20000; ++i) {
    const Key k = static_cast<Key>(rng.Uniform(3000));
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {
      const uint64_t payload = rng.Next64();
      t.Insert(k, payload);
      ref[k] = payload;
    } else {
      const bool t_had = t.Erase(k);
      const bool ref_had = ref.erase(k) > 0;
      ASSERT_EQ(t_had, ref_had) << "erase divergence at key " << k;
    }
  }

  ASSERT_EQ(t.size(), ref.size());
  auto it = ref.begin();
  t.ScanAll([&](Key k, uint64_t v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, ref.end());

  // Point lookups agree everywhere in the key domain.
  for (Key k = 0; k < 3000; ++k) {
    uint64_t v;
    const bool found = t.Lookup(k, &v);
    const auto rit = ref.find(k);
    ASSERT_EQ(found, rit != ref.end()) << k;
    if (found) EXPECT_EQ(v, rit->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreePropertyTest,
                         ::testing::Values(4, 5, 8, 16, 64, 128));

TEST(BTreeTest, DrainToEmptyAndRefill) {
  BTree t(4);
  for (Key k = 0; k < 500; ++k) t.Insert(k, 1);
  for (Key k = 0; k < 500; ++k) EXPECT_TRUE(t.Erase(k));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  for (Key k = 0; k < 100; ++k) t.Insert(k, 2);
  EXPECT_EQ(t.size(), 100u);
  uint64_t v;
  ASSERT_TRUE(t.Lookup(42, &v));
  EXPECT_EQ(v, 2u);
}

}  // namespace
}  // namespace htap
