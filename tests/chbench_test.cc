// CH-benCHmark workload tests: loading invariants, transaction semantics
// (NewOrder consistency), all 12 queries execute, and TP/AP consistency
// (row-path answers == column-path answers after sync).

#include <gtest/gtest.h>

#include "benchlib/chbench.h"
#include "benchlib/driver.h"

namespace htap {
namespace bench {
namespace {

class ChBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.background_sync = false;
    db_ = std::move(*Database::Open(opts));
    cfg_.warehouses = 1;
    cfg_.districts_per_warehouse = 3;
    cfg_.customers_per_district = 20;
    cfg_.items = 50;
    cfg_.initial_orders_per_district = 10;
    ASSERT_TRUE(CreateChTables(db_.get()).ok());
    ASSERT_TRUE(LoadChData(db_.get(), cfg_).ok());
  }

  int64_t Count(const std::string& table) {
    QueryPlan plan;
    plan.table = table;
    plan.aggs = {AggSpec::Count("n")};
    auto res = db_->Query(plan);
    EXPECT_TRUE(res.ok());
    return res->rows[0].Get(0).AsInt64();
  }

  std::unique_ptr<Database> db_;
  ChConfig cfg_;
};

TEST_F(ChBenchTest, LoadProducesExpectedCardinalities) {
  EXPECT_EQ(Count("warehouse"), 1);
  EXPECT_EQ(Count("district"), 3);
  EXPECT_EQ(Count("customer"), 60);
  EXPECT_EQ(Count("item"), 50);
  EXPECT_EQ(Count("stock"), 50);
  EXPECT_EQ(Count("orders"), 30);
  const int64_t ol = Count("orderline");
  EXPECT_GE(ol, 30 * 5);
  EXPECT_LE(ol, 30 * 15);
}

TEST_F(ChBenchTest, NewOrderAdvancesDistrictAndInsertsLines) {
  ChTransactions txns(db_.get(), cfg_, 1);
  const int64_t orders_before = Count("orders");
  Row d_before;
  ASSERT_TRUE(db_->GetRow("district", DistrictKey(1, 1), &d_before).ok());

  int committed = 0;
  for (int i = 0; i < 20; ++i) committed += txns.NewOrder().ok();
  EXPECT_GT(committed, 0);
  EXPECT_EQ(Count("orders"), orders_before + committed);

  // District next_o_id strictly advanced by the orders placed there.
  int64_t next_sum_before = 0, next_sum_after = 0;
  (void)next_sum_before;
  (void)next_sum_after;
  Row d_after;
  ASSERT_TRUE(db_->GetRow("district", DistrictKey(1, 1), &d_after).ok());
  EXPECT_GE(d_after.Get(5).AsInt64(), d_before.Get(5).AsInt64());
}

TEST_F(ChBenchTest, PaymentConservesMoney) {
  ChTransactions txns(db_.get(), cfg_, 2);
  for (int i = 0; i < 15; ++i) ASSERT_TRUE(txns.Payment().ok());
  // warehouse ytd + district ytd both account the same payments:
  QueryPlan wsum;
  wsum.table = "warehouse";
  wsum.aggs = {AggSpec::Sum(3, "ytd")};
  QueryPlan dsum;
  dsum.table = "district";
  dsum.aggs = {AggSpec::Sum(4, "ytd")};
  const double w = db_->Query(wsum)->rows[0].Get(0).AsDouble();
  const double d = db_->Query(dsum)->rows[0].Get(0).AsDouble();
  EXPECT_NEAR(w, d, 1e-6);
  EXPECT_GT(w, 0);
}

TEST_F(ChBenchTest, MixRunsAllProfilesWithoutFailure) {
  ChTransactions txns(db_.get(), cfg_, 3);
  for (int i = 0; i < 200; ++i) txns.RunOne();
  EXPECT_EQ(txns.total(), 200u);
  EXPECT_GT(txns.new_orders(), 0u);
  // A single-threaded client never conflicts with itself.
  EXPECT_EQ(txns.aborts(), 0u);
}

TEST_F(ChBenchTest, AllQueriesExecuteAndAgreeAcrossPaths) {
  ChTransactions txns(db_.get(), cfg_, 4);
  for (int i = 0; i < 50; ++i) txns.RunOne();
  ASSERT_TRUE(db_->ForceSyncAll().ok());

  for (const ChQuery& q : ChQueries()) {
    QueryPlan row_plan = q.plan;
    row_plan.path = PathHint::kForceRow;
    QueryPlan col_plan = q.plan;
    col_plan.path = PathHint::kForceColumn;
    auto row_res = db_->Query(row_plan);
    auto col_res = db_->Query(col_plan);
    ASSERT_TRUE(row_res.ok()) << q.name << ": " << row_res.status().ToString();
    ASSERT_TRUE(col_res.ok()) << q.name << ": " << col_res.status().ToString();
    // Same multiset of result rows regardless of access path.
    auto canon = [](std::vector<Row> rows) {
      std::vector<std::string> out;
      for (const Row& r : rows) out.push_back(r.ToString());
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(canon(row_res->rows), canon(col_res->rows)) << q.name;
  }
}

TEST_F(ChBenchTest, DriverProducesMetrics) {
  DriverConfig dcfg;
  dcfg.oltp_clients = 2;
  dcfg.olap_clients = 1;
  dcfg.duration_micros = 300000;  // 0.3s
  const DriverReport report = RunMixedWorkload(db_.get(), cfg_, dcfg);
  EXPECT_GT(report.txns_committed, 0u);
  EXPECT_GT(report.queries_completed, 0u);
  EXPECT_GT(report.tpm_total, 0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ChBenchDistTest, WorkloadRunsOnDistributedArchitecture) {
  DatabaseOptions opts;
  opts.architecture = ArchitectureKind::kDistributedRowPlusColumnReplica;
  opts.dist.num_shards = 2;
  opts.dist.learner_merge_interval = 50000;
  auto db = std::move(*Database::Open(opts));
  ChConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.items = 20;
  cfg.initial_orders_per_district = 3;
  ASSERT_TRUE(CreateChTables(db.get()).ok());
  ASSERT_TRUE(LoadChData(db.get(), cfg).ok());

  ChTransactions txns(db.get(), cfg, 5);
  int committed = 0;
  for (int i = 0; i < 30; ++i) committed += txns.RunOne().ok();
  EXPECT_GT(committed, 20);

  ASSERT_TRUE(db->ForceSyncAll().ok());
  QueryPlan count;
  count.table = "orders";
  count.aggs = {AggSpec::Count("n")};
  auto res = db->Query(count);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res->rows[0].Get(0).AsInt64(), 6);
}

}  // namespace
}  // namespace bench
}  // namespace htap
