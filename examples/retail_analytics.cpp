// Retail real-time analytics — the paper's introductory scenario:
// "entrepreneurs in retail applications can analyze the latest transaction
// data in real time and identify the sales trend, then take timely
// actions."
//
// A stream of point-of-sale transactions runs against the CH-benCHmark
// schema while an analyst concurrently watches the sales trend per
// district and the low-stock items — on the same database, with no ETL.
//
//   ./build/examples/example_retail_analytics

#include <cstdio>
#include <thread>

#include "benchlib/chbench.h"

using namespace htap;
using namespace htap::bench;

int main() {
  DatabaseOptions options;
  options.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
  auto db = std::move(*Database::Open(options));

  ChConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 50;
  cfg.items = 300;
  cfg.initial_orders_per_district = 10;
  CreateChTables(db.get());
  LoadChData(db.get(), cfg);
  std::printf("store network loaded: %d warehouses, %d items\n\n",
              cfg.warehouses, cfg.items);

  // The point-of-sale stream: a background thread of TPC-C transactions.
  std::atomic<bool> open_for_business{true};
  std::thread pos_stream([&] {
    ChTransactions txns(db.get(), cfg, /*seed=*/2026);
    while (open_for_business.load()) txns.RunOne();
    std::printf("[pos] processed %llu transactions (%llu new orders)\n",
                static_cast<unsigned long long>(txns.total()),
                static_cast<unsigned long long>(txns.new_orders()));
  });

  // The analyst: every 100 ms, re-ask the trend questions on live data.
  QueryPlan revenue_by_district;
  revenue_by_district.table = "orderline";
  revenue_by_district.group_by = {3};  // ol_d_id
  revenue_by_district.aggs = {AggSpec::Sum(8, "revenue"),
                              AggSpec::Count("lines")};
  revenue_by_district.order_by = 1;
  revenue_by_district.order_desc = true;
  revenue_by_district.limit = 3;

  QueryPlan low_stock;
  low_stock.table = "stock";
  low_stock.where = Predicate::Lt(3, Value(int64_t{14}));  // s_quantity < 14
  low_stock.aggs = {AggSpec::Count("low_stock_items")};

  for (int tick = 1; tick <= 5; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto trend = db->Query(revenue_by_district);
    auto stockout = db->Query(low_stock);
    if (!trend.ok() || !stockout.ok()) continue;
    std::printf("[analyst t+%dms] top districts by revenue:\n", tick * 100);
    for (const Row& r : trend->rows)
      std::printf("    district %lld: $%.2f across %lld lines\n",
                  static_cast<long long>(r.Get(0).AsInt64()),
                  r.Get(1).AsDouble(),
                  static_cast<long long>(r.Get(2).AsInt64()));
    std::printf("    items running low: %lld  (freshness lag: %.2f ms)\n",
                static_cast<long long>(stockout->rows[0].Get(0).AsInt64()),
                static_cast<double>(
                    db->Freshness("orderline").fresh_time_lag_micros) /
                    1000.0);
  }

  open_for_business.store(false);
  pos_stream.join();

  // Closing report via SQL.
  auto top_items = db->ExecuteSql(
      "SELECT ol_i_id, COUNT(*) AS times_sold, SUM(ol_amount) AS revenue "
      "FROM orderline GROUP BY ol_i_id ORDER BY revenue DESC LIMIT 5");
  std::printf("\nend-of-day: top 5 items by revenue\n%s",
              top_items->ToString().c_str());
  return 0;
}
