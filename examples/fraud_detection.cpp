// Finance fraud detection — the paper's second motivating scenario:
// "vendors can leverage an HTAP system to process the customer
// transactions efficiently while detecting the fraudulent transactions
// simultaneously."
//
// A payment processor commits transfers; a fraud screen concurrently
// evaluates analytical rules over the freshest data (unusually large
// transfers relative to an account's history, and burst activity).
// Flagged accounts are frozen transactionally — analytics feeding straight
// back into OLTP, in one system.
//
//   ./build/examples/example_fraud_detection

#include <cstdio>

#include "common/random.h"
#include "core/database.h"

using namespace htap;

int main() {
  DatabaseOptions options;
  options.architecture = ArchitectureKind::kColumnPlusDeltaRow;  // HANA-style
  auto db = std::move(*Database::Open(options));

  db->ExecuteSql(
      "CREATE TABLE accounts (acct INT64 PRIMARY KEY, owner STRING, "
      "balance DOUBLE, frozen INT64)");
  db->ExecuteSql(
      "CREATE TABLE transfers (xfer INT64 PRIMARY KEY, acct INT64, "
      "amount DOUBLE, hour INT64)");

  constexpr int kAccounts = 200;
  {
    auto txn = db->Begin();
    for (int a = 1; a <= kAccounts; ++a)
      txn->Insert("accounts",
                  Row{Value(static_cast<int64_t>(a)),
                      Value("acct_" + std::to_string(a)), Value(5000.0),
                      Value(static_cast<int64_t>(0))});
    txn->Commit();
  }

  // The payment stream: mostly ordinary transfers, a few anomalous ones
  // from two compromised accounts.
  Random rng(42);
  int64_t xfer_id = 0;
  int rejected_frozen = 0;
  auto make_transfer = [&](int64_t acct, double amount, int64_t hour) {
    auto txn = db->Begin();
    Row account;
    if (!txn->Get("accounts", acct, &account).ok()) return;
    if (account.Get(3).AsInt64() != 0) {  // frozen: refuse service
      ++rejected_frozen;
      txn->Abort();
      return;
    }
    account.Set(2, Value(account.Get(2).AsDouble() - amount));
    txn->Update("accounts", account);
    txn->Insert("transfers", Row{Value(++xfer_id), Value(acct),
                                 Value(amount), Value(hour)});
    txn->Commit();
  };

  const int64_t compromised[2] = {17, 134};
  for (int64_t hour = 0; hour < 8; ++hour) {
    // ~400 ordinary transfers per "hour".
    for (int i = 0; i < 400; ++i)
      make_transfer(1 + static_cast<int64_t>(rng.Uniform(kAccounts)),
                    5.0 + rng.NextDouble() * 120.0, hour);
    // The compromised accounts drain in bursts from hour 4.
    if (hour >= 4)
      for (int64_t acct : compromised)
        for (int i = 0; i < 12; ++i)
          make_transfer(acct, 800.0 + rng.NextDouble() * 900.0, hour);

    // The fraud screen runs every "hour" over the live data: accounts
    // whose spend this hour is both large and far above the population.
    QueryPlan screen;
    screen.table = "transfers";
    screen.where = Predicate::And(
        {Predicate::Eq(3, Value(hour)), Predicate::Gt(2, Value(500.0))});
    screen.group_by = {1};
    screen.aggs = {AggSpec::Count("big_transfers"),
                   AggSpec::Sum(2, "outflow")};
    auto res = db->Query(screen);
    if (!res.ok()) continue;
    for (const Row& r : res->rows) {
      if (r.Get(1).AsInt64() >= 5) {  // >=5 large transfers in one hour
        const int64_t acct = r.Get(0).AsInt64();
        auto txn = db->Begin();
        Row account;
        txn->Get("accounts", acct, &account);
        if (account.Get(3).AsInt64() == 0) {
          account.Set(3, Value(static_cast<int64_t>(1)));
          txn->Update("accounts", account);
          txn->Commit();
          std::printf(
              "[hour %lld] FROZE account %lld: %lld large transfers, "
              "$%.0f outflow\n",
              static_cast<long long>(hour), static_cast<long long>(acct),
              static_cast<long long>(r.Get(1).AsInt64()),
              r.Get(2).AsDouble());
        } else {
          txn->Abort();
        }
      }
    }
  }

  auto summary = db->ExecuteSql(
      "SELECT frozen, COUNT(*) AS accounts, AVG(balance) AS avg_balance "
      "FROM accounts GROUP BY frozen ORDER BY frozen");
  std::printf("\naccount summary (frozen=1 are blocked):\n%s",
              summary->ToString().c_str());
  std::printf("transfers refused on frozen accounts: %d\n", rejected_frozen);
  std::printf("\nBoth compromised accounts were caught by the analytical "
              "screen while payments kept flowing — no ETL, one system.\n");
  return 0;
}
