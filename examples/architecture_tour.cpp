// Architecture tour: the same application code running on all four of the
// survey's HTAP storage architectures, showing how the presets differ in
// observable behavior (access paths, staging, freshness) while the API
// stays identical.
//
//   ./build/examples/example_architecture_tour

#include <cstdio>

#include "core/database.h"

using namespace htap;

namespace {

const char* Describe(ArchitectureKind k) {
  switch (k) {
    case ArchitectureKind::kRowPlusInMemoryColumn:
      return "(a) primary row store + in-memory column store "
             "[Oracle dual-format, SQL Server CSI]";
    case ArchitectureKind::kDistributedRowPlusColumnReplica:
      return "(b) distributed row store + column replica [TiDB]";
    case ArchitectureKind::kDiskRowPlusDistributedColumn:
      return "(c) disk row store + in-memory column cluster [Heatwave]";
    case ArchitectureKind::kColumnPlusDeltaRow:
      return "(d) primary column store + delta row store [SAP HANA]";
  }
  return "?";
}

void Tour(ArchitectureKind arch) {
  std::printf("================================================\n%s\n",
              Describe(arch));

  DatabaseOptions options;
  options.architecture = arch;
  options.data_dir = "/tmp";
  options.background_sync = false;  // make the staging visible
  options.dist.num_shards = 2;
  auto db = std::move(*Database::Open(options));

  // Identical application code from here on.
  db->ExecuteSql(
      "CREATE TABLE readings (id INT64 PRIMARY KEY, sensor INT64, "
      "temp DOUBLE)");
  auto txn = db->Begin();
  for (int i = 0; i < 500; ++i)
    txn->Insert("readings",
                Row{Value(static_cast<int64_t>(i)),
                    Value(static_cast<int64_t>(i % 10)),
                    Value(15.0 + (i % 40))});
  txn->Commit();

  FreshnessInfo before = db->Freshness("readings");
  QueryExecInfo info;
  QueryPlan hot;
  hot.table = "readings";
  hot.where = Predicate::Gt(2, Value(40.0));
  hot.aggs = {AggSpec::Count("hot_readings"), AggSpec::Avg(2, "avg_temp")};
  auto fresh_answer = db->Query(hot, &info);

  std::printf("  staged changes before merge : %zu entries\n",
              before.pending_delta_entries);
  std::printf("  fresh query path            : %s\n", info.access_path.c_str());
  std::printf("  hot readings (fresh)        : %s\n",
              fresh_answer->rows[0].Get(0).ToString().c_str());

  db->ForceSync("readings");
  QueryExecInfo info2;
  auto merged_answer = db->Query(hot, &info2);
  const FreshnessInfo after = db->Freshness("readings");
  std::printf("  after merge: path=%s, column store at csn %llu (lag %llu)\n",
              info2.access_path.c_str(),
              static_cast<unsigned long long>(after.visible_csn),
              static_cast<unsigned long long>(after.csn_lag));
  std::printf("  answers agree: %s\n\n",
              fresh_answer->rows[0].Get(0) == merged_answer->rows[0].Get(0)
                  ? "yes"
                  : "NO (bug!)");
}

}  // namespace

int main() {
  std::printf("One API, four architectures — the survey's taxonomy, live.\n\n");
  Tour(ArchitectureKind::kRowPlusInMemoryColumn);
  Tour(ArchitectureKind::kDistributedRowPlusColumnReplica);
  Tour(ArchitectureKind::kDiskRowPlusDistributedColumn);
  Tour(ArchitectureKind::kColumnPlusDeltaRow);
  std::printf(
      "Each preset staged the same 500 writes differently (in-memory "
      "delta, Raft log + learner delta files, heap + loaded columns, "
      "L1/L2 delta) but answered identically — the storage-strategy "
      "diversity the survey catalogues.\n");
  return 0;
}
