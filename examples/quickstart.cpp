// Quickstart: open an HTAP database, create a table, run transactions,
// and ask analytical questions over the same data — through both the SQL
// front end and the plan API.
//
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/database.h"

using namespace htap;

int main() {
  // 1. Open a database. The architecture is a one-line choice; this is the
  //    Oracle/SQL-Server-style "primary row store + in-memory column
  //    store" preset.
  DatabaseOptions options;
  options.architecture = ArchitectureKind::kRowPlusInMemoryColumn;
  auto db = std::move(*Database::Open(options));

  // 2. Create a table (SQL or Schema API — both work).
  auto created = db->ExecuteSql(
      "CREATE TABLE products (sku INT64 PRIMARY KEY, name STRING, "
      "category STRING, price DOUBLE, stock INT64)");
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }

  // 3. OLTP: transactional writes.
  db->ExecuteSql(
      "INSERT INTO products VALUES "
      "(1, 'espresso machine', 'kitchen', 249.99, 12), "
      "(2, 'burr grinder',     'kitchen', 119.50, 30), "
      "(3, 'reading lamp',     'home',     39.90, 54), "
      "(4, 'desk organizer',   'office',   18.75, 80), "
      "(5, 'monitor stand',    'office',   44.00, 17)");

  // A multi-statement transaction through the native API: sell two
  // espresso machines atomically.
  {
    auto txn = db->Begin();
    Row product;
    txn->Get("products", 1, &product);
    product.Set(4, Value(product.Get(4).AsInt64() - 2));  // stock -= 2
    txn->Update("products", product);
    const Status st = txn->Commit();
    std::printf("sold 2 espresso machines: %s\n", st.ToString().c_str());
  }

  // 4. OLAP: analytical queries over the live data. Fresh by default —
  //    the engine unions the in-memory delta with the column store.
  auto result = db->ExecuteSql(
      "SELECT category, COUNT(*) AS items, AVG(price) AS avg_price, "
      "SUM(stock) AS stock FROM products GROUP BY category ORDER BY "
      "category");
  std::printf("\ninventory by category:\n%s\n",
              result->ToString().c_str());

  // 5. The same query through the plan API, with EXPLAIN-style info.
  QueryPlan plan;
  plan.table = "products";
  plan.where = Predicate::Gt(3, Value(40.0));  // price > 40
  plan.aggs = {AggSpec::Count("expensive_items")};
  QueryExecInfo info;
  auto counted = db->Query(plan, &info);
  std::printf("items over $40: %s (access path: %s)\n",
              counted->rows[0].Get(0).ToString().c_str(),
              info.access_path.c_str());

  // 6. HTAP internals are observable: freshness of the column store.
  const FreshnessInfo f = db->Freshness("products");
  std::printf(
      "\nfreshness: committed csn=%llu, column store at csn=%llu, "
      "%zu changes staged in the delta\n",
      static_cast<unsigned long long>(f.committed_csn),
      static_cast<unsigned long long>(f.visible_csn),
      f.pending_delta_entries);
  db->ForceSync("products");
  std::printf("after ForceSync: lag=%llu\n",
              static_cast<unsigned long long>(
                  db->Freshness("products").csn_lag));
  return 0;
}
