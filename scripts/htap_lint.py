#!/usr/bin/env python3
"""htap-lint: project-invariant static analysis for htapdb.

Generic tooling (clang-tidy, sanitizers, -Wthread-safety) cannot express the
invariants this repo's concurrency layer is built on: ranked mutexes only,
EBR pins around latch-free node access, explicit memory orders with audited
rationale. htap-lint checks exactly those. See DESIGN.md section 16 for each
check's rationale and an example violation.

Checks (ids used by suppressions and --only):

  raw-mutex     No std::mutex / std::shared_mutex / std::lock_guard /
                std::unique_lock / std::scoped_lock / std::shared_lock /
                std::condition_variable(_any) / <mutex>-family includes
                outside src/common/mutex.{h,cc}. First-party locking goes
                through htap::Mutex / SharedMutex / SpinLatch so every lock
                is ranked, named and capability-annotated.
  rank-table    The LockRank enum in src/common/mutex.h and the DESIGN.md
                section-11 rank table must agree exactly (names both ways,
                numeric ranks equal). The table lives between
                `htap-lint:rank-table` markers and is regenerated with
                --write-ranks, so drift is always mechanical to fix.
  ebr-pin       In src/index/btree.cc, dereferencing retire-capable Node
                pointers or calling Retire()/RetireNode() requires an active
                EpochManager::Guard in scope, a `// ebr: requires-pin`
                contract on the function (callers are then checked instead),
                or a `// ebr: unpinned-ok — <reason>` exemption
                (single-threaded teardown paths).
  atomic-order  Every explicit std::atomic load/store/RMW/fence in src/ must
                name a std::memory_order — no seq_cst-by-default. The full
                audited site table is emitted by --dump-atomics.
  order-justify Every non-relaxed memory order (acquire/release/acq_rel/
                seq_cst) must carry an `order:` comment — on the statement,
                within the call, or in the comment block directly above —
                stating what the ordering edge pairs with / publishes.
  guarded-by    In a class that owns an htap::Mutex / SharedMutex /
                SpinLatch / RWLatch, every mutable non-atomic data member
                must carry GUARDED_BY/PT_GUARDED_BY (or a justified
                suppression for members protected by other means).
  block-under-latch
                No blocking while a SpinLatch guard or EBR pin is held in
                the same function body: CondVar waits, ranked-mutex
                Lock/LockShared (MutexLock/WriteGuard/ReadGuard), or file
                I/O. Spin sections must stay a handful of instructions;
                pins must not stall epoch advancement on arbitrary waits.

Suppressions: `// htap-lint: <check>[,<check>...] — <justification>` on the
flagged line. The justification is mandatory; each check has a suppression
budget (SUPPRESSION_BUDGET below, default zero) and exceeding it fails the
run, so exceptions stay enumerated and auditable.

Engine: uses the libclang Python bindings for comment/string-accurate
tokenization when importable, and falls back to a built-in lexer with the
same semantics otherwise — the tool always runs. Both engines feed the same
check logic; --engine forces one.

Exit codes: 0 clean, 1 findings/budget violations, 2 usage or parse errors.
"""

import argparse
import os
import re
import sys

FIRST_PARTY_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTS = (".cc", ".h", ".cpp", ".hpp")

# Files allowed to use the raw standard primitives (they implement the
# wrappers).
RAW_MUTEX_ALLOWED = ("src/common/mutex.h", "src/common/mutex.cc")

# Path scoping for the default (whole-repo) run. `--only` overrides this and
# applies the selected checks to every given path (fixture mode).
CHECK_SCOPE = {
    "raw-mutex": FIRST_PARTY_DIRS,
    "atomic-order": ("src",),
    "order-justify": ("src",),
    "guarded-by": ("src",),
    "block-under-latch": ("src",),
}
EBR_FILE = "src/index/btree.cc"
RANK_ENUM_FILE = "src/common/mutex.h"
RANK_DOC_FILE = "DESIGN.md"

CHECKS = (
    "raw-mutex",
    "rank-table",
    "ebr-pin",
    "atomic-order",
    "order-justify",
    "guarded-by",
    "block-under-latch",
)

# Per-check suppression budgets: the exact number of justified exceptions the
# tree is allowed. Default is zero; every grant is enumerated here with the
# reason the exception class exists. Exceeding a budget fails the run even if
# every suppression carries a justification — grow a budget only alongside
# the code review that adds the site.
SUPPRESSION_BUDGET = {
    # lock_rank_test.cc: the <mutex>/<shared_mutex> includes plus the two
    # sizeof() layout static_asserts — the test's whole point is naming the
    # std types; it never locks one.
    "raw-mutex": 4,
    # Members protected by construction-/registration-phase serialization
    # or by a lock that isn't lexically expressible (nested structs guarded
    # by the owner's mutex, ctor-fill/dtor-join thread containers).
    "guarded-by": 9,
}

RAW_MUTEX_TOKENS = (
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "condition_variable", "condition_variable_any",
)
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(" + "|".join(RAW_MUTEX_TOKENS) + r")\b")
RAW_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>")

ATOMIC_OP_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(|\b(atomic_thread_fence)\s*\(")
# `x.load()` / `x.store(v)` / `x.exchange(v)` are only atomic ops when `x`
# is atomic — other classes legitimately have methods with those names
# (e.g. RowTxnLayer::store()). The fetch_*/compare_exchange_* family and
# fences are unambiguous. Receivers are resolved against the set of names
# declared `atomic<...>` anywhere in the linted file set.
AMBIGUOUS_ATOMIC_OPS = {"load", "store", "exchange"}
ATOMIC_DECL_RE = re.compile(
    r"\batomic\s*<[^<>;{}]*(?:<[^<>]*>[^<>;{}]*)?>[\s&*]*(\w+)")
NON_RELAXED_RE = re.compile(
    r"memory_order(?:_|::\s*)(acquire|release|acq_rel|seq_cst|consume)")

MUTEX_MEMBER_TYPES = {"Mutex", "SharedMutex", "SpinLatch", "RWLatch"}
SYNC_MEMBER_TYPES = MUTEX_MEMBER_TYPES | {"CondVar"}
ANNOTATION_MACROS = (
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED", "ACQUIRE",
    "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "EXCLUDES", "RETURN_CAPABILITY",
    "ASSERT_CAPABILITY", "CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
)

NODE_MEMBERS = (
    "leaf", "version", "count", "next", "keys", "vals", "Child", "SetChild",
    "StableVersion", "Validate", "TryLock", "LockBlocking", "Unlock",
    "UnlockObsolete", "LowerBound", "UpperBound",
)
NODE_DEREF_RE = re.compile(r"->\s*(" + "|".join(NODE_MEMBERS) + r")\b")
RETIRE_RE = re.compile(r"(?:\.|->|\b)Retire(?:Node)?\s*\(")
PIN_DECL_RE = re.compile(r"\bEpochManager\s*::\s*Guard\s+\w+\s*[({]")
SPIN_DECL_RE = re.compile(r"\bSpinGuard\s+\w+\s*[({]")

BLOCKING_TOKEN_RES = (
    (re.compile(r"\bMutexLock\b"), "ranked-mutex MutexLock"),
    (re.compile(r"\bWriteGuard\b"), "ranked-mutex WriteGuard"),
    (re.compile(r"\bReadGuard\b"), "ranked-mutex ReadGuard"),
    (re.compile(r"(?:\.|->)\s*Lock\s*\("), "ranked-mutex Lock()"),
    (re.compile(r"(?:\.|->)\s*LockShared\s*\("), "ranked-mutex LockShared()"),
    (re.compile(r"(?:\.|->)\s*Wait\s*\("), "CondVar::Wait"),
    (re.compile(r"\b(?:std\s*::\s*)?(?:o|i)?fstream\b"), "file stream"),
    (re.compile(r"\b(?:fopen|fread|fwrite|fflush|fsync|pread|pwrite)\s*\("),
     "file I/O"),
)

SUPPRESS_RE = re.compile(
    r"htap-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*(?:—|–|--|-)\s*(.*)")
EBR_MARKER_RE = re.compile(r"ebr:\s*(requires-pin|unpinned-ok)")
ORDER_NOTE_RE = re.compile(r"\border:")

RANK_MARKER_BEGIN = "<!-- htap-lint:rank-table begin -->"
RANK_MARKER_END = "<!-- htap-lint:rank-table end -->"


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message
        self.suppressed = False
        self.reason = ""

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# ---------------------------------------------------------------------------
# Source model: raw text + comment-and-string-stripped code (same length,
# newlines preserved) + per-line comment text. Both engines produce this.
# ---------------------------------------------------------------------------

class Source:
    def __init__(self, path, text, code, comments):
        self.path = path
        self.text = text
        self.code = code  # comments/strings blanked, same offsets as text
        self.comments = comments  # {line: " ".join(comment text on line)}
        self.line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self.line_starts.append(i + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1  # 1-based

    def code_line(self, line):
        """Stripped code content of a 1-based line."""
        start = self.line_starts[line - 1]
        end = (self.line_starts[line] - 1 if line < len(self.line_starts)
               else len(self.code))
        return self.code[start:end]

    def comment_on(self, line):
        return self.comments.get(line, "")


def _record_comment(comments, line, text):
    for i, part in enumerate(text.split("\n")):
        if part.strip():
            key = line + i
            comments[key] = (comments.get(key, "") + " " + part).strip()


def strip_regex(text):
    """Built-in lexer: blank comments/strings, collect per-line comments."""
    out = list(text)
    comments = {}
    i, n, line = 0, len(text), 1
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            _record_comment(comments, line, text[i:j])
            for k in range(i, j):
                out[k] = " "
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            _record_comment(comments, line, text[i:j + 2])
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, j + 2)
            i = j + 2
        elif ch == '"':
            if i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^()\s]*)\(', text[i - 1:i + 20])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i + 1)
                    j = n - len(close) if j == -1 else j
                    end = j + len(close)
                    for k in range(i, end):
                        if out[k] != "\n":
                            out[k] = " "
                    line += text.count("\n", i, end)
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, min(j + 1, n))
            i = j + 1
        elif ch == "'" and not (i >= 1 and (text[i - 1].isalnum()
                                            or text[i - 1] == "_")):
            # Not a digit separator (1'000'000): blank the char literal.
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            for k in range(i, min(j + 1, n)):
                out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out), comments


_LIBCLANG = None


def _libclang():
    """Import clang.cindex once; None when unavailable (fallback engine)."""
    global _LIBCLANG
    if _LIBCLANG is None:
        try:
            import clang.cindex as ci
            idx = ci.Index.create()
            _LIBCLANG = (ci, idx)
        except Exception:
            _LIBCLANG = (None, None)
    return _LIBCLANG


def strip_libclang(path, text):
    """libclang tokenizer front end: identical artifacts to strip_regex."""
    ci, idx = _libclang()
    if ci is None:
        return None
    try:
        tu = idx.parse(path, args=["-std=c++17", "-fsyntax-only"],
                       unsaved_files=[(path, text)])
        out = list(text)
        comments = {}
        line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                line_starts.append(i + 1)

        def off(loc):
            return line_starts[loc.line - 1] + loc.column - 1

        for tok in tu.get_tokens(extent=tu.cursor.extent):
            kind = tok.kind.name
            spelling = tok.spelling
            if kind == "COMMENT" or (kind == "LITERAL"
                                     and spelling[:1] in "\"'RuUL"
                                     and '"' in spelling or
                                     kind == "LITERAL"
                                     and spelling[:1] == "'"):
                start = off(tok.extent.start)
                end = off(tok.extent.end)
                if kind == "COMMENT":
                    _record_comment(comments, tok.extent.start.line, spelling)
                for k in range(start, min(end, len(out))):
                    if out[k] != "\n":
                        out[k] = " "
        return "".join(out), comments
    except Exception:
        return None


def load_source(path, engine):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    stripped = None
    if engine in ("auto", "libclang"):
        stripped = strip_libclang(path, text)
        if stripped is None and engine == "libclang":
            raise RuntimeError("libclang engine requested but unavailable")
    if stripped is None:
        stripped = strip_regex(text)
    return Source(path, text, stripped[0], stripped[1])


# ---------------------------------------------------------------------------
# Structural helpers: brace blocks and function regions over stripped code.
# ---------------------------------------------------------------------------

class Block:
    __slots__ = ("open", "close", "parent")

    def __init__(self, open_, close, parent):
        self.open = open_
        self.close = close
        self.parent = parent


def build_blocks(code):
    blocks, stack = [], []
    for i, ch in enumerate(code):
        if ch == "{":
            b = Block(i, len(code), stack[-1] if stack else None)
            blocks.append(b)
            stack.append(b)
        elif ch == "}" and stack:
            stack.pop().close = i
    return blocks


CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "do", "else"}
CONTAINER_RE = re.compile(
    r"\b(class|struct|union|namespace|enum)\b")


class FuncRegion:
    def __init__(self, name, header_line, block, container):
        self.name = name
        self.header_line = header_line
        self.block = block
        self.container = container  # enclosing container header text or ""


def _header_of(code, block):
    """Text from the previous ; { or } up to this block's opening brace."""
    i = block.open - 1
    while i >= 0 and code[i] not in ";{}":
        i -= 1
    return code[i + 1:block.open], i + 1


def extract_functions(src):
    """Function-like blocks (name + body extent), with enclosing container
    headers for struct/class method attribution. AST-lite: good enough for
    this repo's formatting; fixtures pin the supported shapes."""
    code = src.code
    funcs = []
    containers = {}  # block -> header text
    blocks = build_blocks(code)
    func_blocks = set()
    for b in blocks:
        header, hstart = _header_of(code, b)
        if CONTAINER_RE.search(header) and "(" not in header.split("<")[0]:
            containers[b] = header
            continue
        paren = header.find("(")
        if paren == -1 or ")" not in header:
            continue
        m = re.findall(r"[A-Za-z_]\w*", header[:paren])
        if not m:
            continue
        name = m[-1]
        if name in CONTROL_KEYWORDS:
            continue
        # Skip blocks nested inside another function (control flow handled
        # by the keyword filter; lambdas have no name and fall out above).
        p = b.parent
        nested = False
        while p is not None:
            if p in func_blocks:
                nested = True
                break
            p = p.parent
        if nested:
            continue
        func_blocks.add(b)
        container = ""
        p = b.parent
        while p is not None:
            if p in containers:
                container = containers[p]
                break
            p = p.parent
        first_nonws = hstart
        while first_nonws < b.open and code[first_nonws].isspace():
            first_nonws += 1
        funcs.append(FuncRegion(name, src.line_of(first_nonws), b, container))
    return funcs


def leading_comment_lines(src, line):
    """Contiguous comment-only lines directly above `line` (inclusive of a
    trailing comment on `line` itself)."""
    texts = [src.comment_on(line)]
    cur = line - 1
    while cur >= 1 and not src.code_line(cur).strip() and src.comment_on(cur):
        texts.append(src.comment_on(cur))
        cur -= 1
    return [t for t in texts if t]


def statement_start_line(src, line):
    """Walk up past continuation lines to the statement's first line."""
    cur = line
    while cur > 1:
        prev = src.code_line(cur - 1).strip()
        if not prev or prev[-1] in ";{}:" or prev.endswith("):"):
            break
        cur -= 1
    return cur


def matching_paren(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def check_raw_mutex(src, findings):
    if src.path.replace(os.sep, "/").endswith(RAW_MUTEX_ALLOWED):
        return
    for m in RAW_MUTEX_RE.finditer(src.code):
        findings.append(Finding(
            "raw-mutex", src.path, src.line_of(m.start()),
            f"raw std::{m.group(1)} — use the ranked htap:: wrappers "
            f"(src/common/mutex.h, latch.h)"))
    for m in RAW_INCLUDE_RE.finditer(src.code):
        findings.append(Finding(
            "raw-mutex", src.path, src.line_of(m.start()),
            f"#include <{m.group(1)}> outside the wrapper layer"))


def _receiver_is_atomic(src, op_match, atomic_names):
    """For the ambiguous load/store/exchange ops, does the receiver's final
    identifier name something declared atomic? Unresolvable receivers (e.g.
    a call result) are conservatively treated as atomic."""
    if op_match.group(1) not in AMBIGUOUS_ATOMIC_OPS:
        return True
    recv = re.search(r"(\w+)\s*$", src.code[:op_match.start()])
    return recv is None or recv.group(1) in atomic_names


def check_atomic_order(src, findings, atomic_names):
    for m in ATOMIC_OP_RE.finditer(src.code):
        op = m.group(1) or m.group(2)
        open_idx = src.code.index("(", m.end() - 1)
        close_idx = matching_paren(src.code, open_idx)
        span = src.code[open_idx:close_idx + 1]
        if "memory_order" in span:
            continue
        if not _receiver_is_atomic(src, m, atomic_names):
            continue
        findings.append(Finding(
            "atomic-order", src.path, src.line_of(m.start()),
            f"atomic {op}() without an explicit std::memory_order "
            f"(seq_cst-by-default is banned; say what you need)"))


def _order_justified(src, stmt_line, end_line):
    """An `order:` comment on the statement's lines, or in the comment block
    (or trailing comment) directly above it, justifies the site."""
    if any(ORDER_NOTE_RE.search(src.comment_on(ln))
           for ln in range(stmt_line, end_line + 1)):
        return True
    return any(ORDER_NOTE_RE.search(t)
               for t in leading_comment_lines(src, stmt_line - 1))


def check_order_justify(src, findings):
    for m in ATOMIC_OP_RE.finditer(src.code):
        open_idx = src.code.index("(", m.end() - 1)
        close_idx = matching_paren(src.code, open_idx)
        span = src.code[m.start():close_idx + 1]
        if not NON_RELAXED_RE.search(span):
            continue
        op_line = src.line_of(m.start())
        end_line = src.line_of(close_idx)
        stmt_line = statement_start_line(src, op_line)
        if not _order_justified(src, stmt_line, end_line):
            order = NON_RELAXED_RE.search(span).group(1)
            findings.append(Finding(
                "order-justify", src.path, op_line,
                f"memory_order_{order} without an `order:` comment "
                f"explaining the required edge (what it pairs with)"))


def _decl_is_function(decl):
    """True when a class-body declaration is a function (vs data member).
    Parens inside template args or brace initializers don't count."""
    angle = brace = 0
    for ch in decl:
        if ch == "<":
            angle += 1
        elif ch == ">":
            angle = max(0, angle - 1)
        elif ch == "{":
            brace += 1
        elif ch == "}":
            brace = max(0, brace - 1)
        elif ch == "(" and angle == 0 and brace == 0:
            return True
    return False


MEMBER_SKIP_RE = re.compile(
    r"^\s*(using|typedef|friend|static|static_assert|enum|class|struct|"
    r"union|template|explicit|virtual|operator|public|private|protected|"
    r"~|\})")


def collect_lock_owning_types(sources):
    """Class/struct names that own a ranked mutex member anywhere in the
    linted set. A member whose type is such a class is internally
    synchronized — the class protects its own state — so the containing
    class owes no GUARDED_BY claim for it."""
    mutex_decl = re.compile(
        r"\b(?:" + "|".join(sorted(MUTEX_MEMBER_TYPES)) + r")\s+\w+")
    types = set()
    for src in sources:
        code = src.code
        for b in build_blocks(code):
            header, _ = _header_of(code, b)
            cm = re.search(r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
                       r"([A-Za-z_][\w:]*)", header)
            if cm and mutex_decl.search(code[b.open + 1:b.close]):
                types.add(cm.group(2).split("::")[-1])
    return types


def check_guarded_by(src, findings, lock_owning_types=frozenset()):
    code = src.code
    blocks = build_blocks(code)
    for b in blocks:
        header, _ = _header_of(code, b)
        cm = re.search(r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
                       r"([A-Za-z_][\w:]*)", header)
        if not cm:
            continue
        class_name = cm.group(2)
        body = code[b.open + 1:b.close]
        # Blank nested blocks and parens so top-level ';' split is clean.
        flat = []
        depth = 0
        for ch in body:
            if ch in "{(":
                depth += 1
                flat.append(ch)
            elif ch in "})":
                depth -= 1
                flat.append(ch)
            elif depth > 0 and ch != "\n" and ch != ";":
                flat.append(" ")
            elif depth > 0 and ch == ";":
                flat.append(" ")
            else:
                flat.append(ch)
        flat = "".join(flat)
        flat = re.sub(r"\b(public|private|protected)\s*:", " ", flat)
        members = []   # (name, decl, offset_in_body)
        mutexes = []
        pos = 0
        for raw_decl in flat.split(";"):
            decl_off = pos
            pos += len(raw_decl) + 1
            decl = raw_decl.strip()
            if not decl or MEMBER_SKIP_RE.match(decl):
                continue
            stripped = decl
            for mac in ANNOTATION_MACROS:
                stripped = re.sub(mac + r"\s*\([^()]*\)", " ", stripped)
                stripped = re.sub(r"\b" + mac + r"\b", " ", stripped)
            if _decl_is_function(stripped):
                continue
            # Drop initializers for the name/type split.
            head = re.split(r"[={]", stripped, 1)[0].strip()
            head = re.sub(r"\[[^\]]*\]", "", head).strip()
            ids = re.findall(r"[A-Za-z_]\w*", head)
            if len(ids) < 2:
                continue
            name = ids[-1]
            type_text = head[:head.rfind(name)]
            type_ids = set(re.findall(r"[A-Za-z_]\w*", type_text))
            abs_off = b.open + 1 + decl_off + len(raw_decl) - len(
                raw_decl.lstrip())
            line = src.line_of(b.open + 1 + decl_off +
                               raw_decl.find(name))
            if type_ids & SYNC_MEMBER_TYPES:
                if type_ids & MUTEX_MEMBER_TYPES:
                    mutexes.append(name)
                continue
            if "const" in type_ids or "constexpr" in type_ids:
                continue
            if "atomic" in type_ids or "atomic_bool" in type_ids:
                continue
            if type_ids & lock_owning_types:
                continue  # member's type carries its own lock
            if re.search(r"\b(PT_)?GUARDED_BY\b", decl):
                continue
            members.append((name, line))
        if mutexes:
            for name, line in members:
                findings.append(Finding(
                    "guarded-by", src.path, line,
                    f"member '{name}' of {class_name} (owns mutex "
                    f"'{mutexes[0]}') has no GUARDED_BY/PT_GUARDED_BY claim"))


def _scopes(src, func, decl_re):
    """(start, end) offsets from each decl matching decl_re to the end of
    its innermost enclosing block within `func`."""
    code = src.code
    body = code[func.block.open:func.block.close + 1]
    scopes = []
    for m in decl_re.finditer(body):
        pos = func.block.open + m.start()
        blocks = build_blocks(code)
        inner = func.block
        for b in blocks:
            if b.open <= pos <= b.close:
                if b.open >= inner.open and b.close <= inner.close:
                    inner = b
        scopes.append((pos, inner.close))
    return scopes


def check_block_under_latch(src, findings):
    for func in extract_functions(src):
        scopes = (_scopes(src, func, SPIN_DECL_RE) +
                  _scopes(src, func, PIN_DECL_RE))
        if not scopes:
            continue
        body = src.code[func.block.open:func.block.close + 1]
        for token_re, what in BLOCKING_TOKEN_RES:
            for m in token_re.finditer(body):
                pos = func.block.open + m.start()
                if any(s <= pos <= e for s, e in scopes):
                    findings.append(Finding(
                        "block-under-latch", src.path, src.line_of(pos),
                        f"{what} while a spin latch or EBR pin is held in "
                        f"{func.name}()"))


def check_ebr_pin(src, findings):
    funcs = extract_functions(src)
    markers = {}
    for func in funcs:
        texts = leading_comment_lines(src, func.header_line)
        # Also accept the marker anywhere on the header's own lines.
        mk = set()
        for t in texts:
            m = EBR_MARKER_RE.search(t)
            if m:
                mk.add(m.group(1))
        markers[func] = mk
    container_marks = {}
    blocks = build_blocks(src.code)
    for b in blocks:
        header, hstart = _header_of(src.code, b)
        if CONTAINER_RE.search(header):
            first = hstart
            while first < b.open and src.code[first].isspace():
                first += 1
            for t in leading_comment_lines(src, src.line_of(first)):
                m = EBR_MARKER_RE.search(t)
                if m:
                    container_marks[b] = m.group(1)
    requires_pin_names = set()
    for func in funcs:
        mk = set(markers[func])
        p = func.block.parent
        while p is not None:
            if p in container_marks:
                mk.add(container_marks[p])
            p = p.parent
        markers[func] = mk
        if "requires-pin" in mk:
            requires_pin_names.add(func.name)

    call_res = {name: re.compile(r"\b" + name + r"\s*\(")
                for name in requires_pin_names}

    for func in funcs:
        mk = markers[func]
        if "unpinned-ok" in mk:
            continue
        pinned_everywhere = "requires-pin" in mk
        scopes = _scopes(src, func, PIN_DECL_RE)
        body = src.code[func.block.open:func.block.close + 1]

        def pinned(pos):
            return pinned_everywhere or any(s <= pos <= e
                                            for s, e in scopes)

        for m in NODE_DEREF_RE.finditer(body):
            pos = func.block.open + m.start()
            if not pinned(pos):
                findings.append(Finding(
                    "ebr-pin", src.path, src.line_of(pos),
                    f"node->{m.group(1)} outside an active EBR pin in "
                    f"{func.name}() — retire-capable node access needs "
                    f"EpochManager::Guard or an `ebr: requires-pin` "
                    f"contract"))
        for m in RETIRE_RE.finditer(body):
            pos = func.block.open + m.start()
            if not pinned(pos):
                findings.append(Finding(
                    "ebr-pin", src.path, src.line_of(pos),
                    f"Retire() while not pinned in {func.name}()"))
        for name, cre in call_res.items():
            if name == func.name:
                continue
            for m in cre.finditer(body):
                pos = func.block.open + m.start()
                if not pinned(pos):
                    findings.append(Finding(
                        "ebr-pin", src.path, src.line_of(pos),
                        f"call to {name}() (contract: requires-pin) outside "
                        f"an active EBR pin in {func.name}()"))


# ---------------------------------------------------------------------------
# rank-table: LockRank enum <-> DESIGN.md table consistency + regeneration.
# ---------------------------------------------------------------------------

def parse_rank_enum(src):
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{", src.code)
    if not m:
        return None, "no `enum class LockRank` found"
    close = src.code.index("}", m.end())
    ranks = {}
    body_raw = src.text[m.end():close]
    for em in re.finditer(r"k(\w+)\s*=\s*(\d+)\s*,?([^\n]*)", body_raw):
        comment = em.group(3).strip()
        comment = re.sub(r"^//\s*", "", comment)
        ranks["k" + em.group(1)] = (int(em.group(2)), comment)
    return ranks, None


def parse_rank_doc(doc_text):
    begin = doc_text.find(RANK_MARKER_BEGIN)
    end = doc_text.find(RANK_MARKER_END)
    if begin == -1 or end == -1:
        return None, (f"DESIGN.md rank table markers missing "
                      f"({RANK_MARKER_BEGIN!r} … {RANK_MARKER_END!r})")
    table = doc_text[begin:end]
    rows = {}
    for rm in re.finditer(
            r"^\|\s*(\d+)\s*\|\s*`(k\w+)`\s*\|([^|]*)\|([^|]*)\|",
            table, re.M):
        rows[rm.group(2)] = (int(rm.group(1)), rm.group(3).strip(),
                             rm.group(4).strip())
    return rows, None


def check_rank_table(enum_src, doc_path, findings):
    ranks, err = parse_rank_enum(enum_src)
    if err:
        findings.append(Finding("rank-table", enum_src.path, 1, err))
        return
    with open(doc_path, "r", encoding="utf-8") as f:
        doc_text = f.read()
    rows, err = parse_rank_doc(doc_text)
    if err:
        findings.append(Finding("rank-table", doc_path, 1, err))
        return
    for name, (value, _) in sorted(ranks.items(), key=lambda kv: kv[1][0]):
        if name not in rows:
            findings.append(Finding(
                "rank-table", doc_path, 1,
                f"LockRank::{name} ({value}) missing from the DESIGN.md "
                f"rank table — run --write-ranks"))
        elif rows[name][0] != value:
            findings.append(Finding(
                "rank-table", doc_path, 1,
                f"LockRank::{name} drifted: enum says {value}, table says "
                f"{rows[name][0]} — run --write-ranks"))
    for name, (value, _, _) in rows.items():
        if name not in ranks:
            findings.append(Finding(
                "rank-table", doc_path, 1,
                f"table row `{name}` ({value}) has no LockRank constant — "
                f"stale doc entry"))


def render_rank_table(enum_src, doc_path):
    ranks, err = parse_rank_enum(enum_src)
    if err:
        raise RuntimeError(err)
    rows = {}
    if os.path.exists(doc_path):
        with open(doc_path, "r", encoding="utf-8") as f:
            parsed, _ = parse_rank_doc(f.read())
            rows = parsed or {}
    lines = [
        "| Rank | Name (`LockRank::`)  | Protects"
        "                                    | Evidence for its position |",
        "|-----:|----------------------|------------------------------------"
        "---------|---------------------------|",
    ]
    for name, (value, comment) in sorted(ranks.items(),
                                         key=lambda kv: kv[1][0]):
        protects, evidence = (rows.get(name) or (None, None, None))[1:]
        if protects is None:
            protects = comment or "(fill in)"
            evidence = "(fill in: name the nesting chain fixing this edge)"
        lines.append(f"| {value:>4} | `{name}`{' ' * max(1, 20 - len(name) - 2)}| "
                     f"{protects} | {evidence} |")
    return "\n".join(lines)


def write_rank_table(enum_src, doc_path):
    with open(doc_path, "r", encoding="utf-8") as f:
        doc = f.read()
    begin = doc.find(RANK_MARKER_BEGIN)
    end = doc.find(RANK_MARKER_END)
    if begin == -1 or end == -1:
        raise RuntimeError("rank table markers missing in " + doc_path)
    table = render_rank_table(enum_src, doc_path)
    new = (doc[:begin + len(RANK_MARKER_BEGIN)] + "\n" + table + "\n" +
           doc[end:])
    with open(doc_path, "w", encoding="utf-8") as f:
        f.write(new)


def collect_atomic_names(sources):
    """Names declared `atomic<...>` anywhere in the linted file set."""
    names = set()
    for src in sources:
        for m in ATOMIC_DECL_RE.finditer(src.code):
            names.add(m.group(1))
    return names


def dump_atomics(sources):
    """Auditable table of every explicit atomic op site in the linted set."""
    atomic_names = collect_atomic_names(sources)
    print("file\tline\top\torders\tjustified")
    count = 0
    for src in sources:
        for m in ATOMIC_OP_RE.finditer(src.code):
            if not _receiver_is_atomic(src, m, atomic_names):
                continue
            op = m.group(1) or m.group(2)
            open_idx = src.code.index("(", m.end() - 1)
            close_idx = matching_paren(src.code, open_idx)
            span = src.code[m.start():close_idx + 1]
            orders = sorted(set(
                o.group(1) for o in re.finditer(
                    r"memory_order(?:_|::\s*)(\w+)", span))) or ["(none)"]
            line = src.line_of(m.start())
            justified = _order_justified(
                src, statement_start_line(src, line), src.line_of(close_idx))
            print(f"{src.path}\t{line}\t{op}\t{','.join(orders)}\t"
                  f"{'yes' if justified else '-'}")
            count += 1
    print(f"# {count} atomic sites", file=sys.stderr)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_suppressions(src):
    """{line: {check: reason}} plus malformed-suppression findings.

    A suppression on a comment-only line covers the next line that carries
    code (NOLINTNEXTLINE-style), so long justifications need not share the
    flagged line.
    """
    n_lines = len(src.line_starts)
    out, bad = {}, []
    for line, text in src.comments.items():
        if "htap-lint" not in text:
            continue
        m = SUPPRESS_RE.search(text)
        if not m:
            bad.append(Finding(
                "suppression", src.path, line,
                "malformed suppression — use `// htap-lint: <check> — "
                "<justification>`"))
            continue
        target = line
        if not src.code_line(line).strip():
            probe = line + 1
            while probe <= n_lines and not src.code_line(probe).strip():
                probe += 1
            if probe <= n_lines:
                target = probe
        checks = [c.strip() for c in m.group(1).split(",")]
        reason = m.group(2).strip()
        for c in checks:
            if c not in CHECKS:
                bad.append(Finding(
                    "suppression", src.path, line,
                    f"suppression names unknown check '{c}'"))
                continue
            if not reason:
                bad.append(Finding(
                    "suppression", src.path, line,
                    f"suppression for '{c}' lacks a justification"))
                continue
            out.setdefault(target, {})[c] = reason
    return out, bad


def in_scope(path, check, only):
    rel = path.replace(os.sep, "/")
    if only:
        return check in only
    if check == "ebr-pin":
        return rel.endswith(EBR_FILE)
    dirs = CHECK_SCOPE.get(check, ())
    return any(rel.startswith(d + "/") or ("/" + d + "/") in rel
               for d in dirs)


def main():
    ap = argparse.ArgumentParser(
        description="htap-lint: project-invariant static analysis")
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: first-party tree)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: script's parent dir)")
    ap.add_argument("--engine", choices=("auto", "regex", "libclang"),
                    default="auto")
    ap.add_argument("--only", action="append", default=[], metavar="CHECK",
                    help="run only this check, on every given path "
                         "(repeatable; fixture mode)")
    ap.add_argument("--budget", action="append", default=[],
                    metavar="CHECK=N", help="override a suppression budget")
    ap.add_argument("--rank-enum", default=None,
                    help="header holding `enum class LockRank`")
    ap.add_argument("--rank-doc", default=None,
                    help="markdown doc holding the marked rank table")
    ap.add_argument("--dump-ranks", action="store_true",
                    help="print the regenerated rank table and exit")
    ap.add_argument("--write-ranks", action="store_true",
                    help="rewrite the rank table between its markers")
    ap.add_argument("--dump-atomics", action="store_true",
                    help="print the audited atomic-site table and exit")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--ci", action="store_true",
                    help="terse output for CI logs")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    for c in args.only:
        if c not in CHECKS:
            print(f"htap-lint: unknown check '{c}'", file=sys.stderr)
            return 2
    budgets = dict(SUPPRESSION_BUDGET)
    for spec in args.budget:
        try:
            check, n = spec.split("=", 1)
            if check not in CHECKS:
                raise ValueError
            budgets[check] = int(n)
        except ValueError:
            print(f"htap-lint: bad --budget '{spec}'", file=sys.stderr)
            return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    rank_enum = args.rank_enum or os.path.join(root, RANK_ENUM_FILE)
    rank_doc = args.rank_doc or os.path.join(root, RANK_DOC_FILE)

    if args.paths:
        paths = args.paths
    else:
        paths = []
        for d in FIRST_PARTY_DIRS:
            for base, _, names in os.walk(os.path.join(root, d)):
                if "lint_fixtures" in base:
                    continue  # fixtures deliberately violate the checks
                for n in sorted(names):
                    if n.endswith(CPP_EXTS):
                        paths.append(os.path.join(base, n))
    paths = [os.path.relpath(p, root) if os.path.isabs(p) else p
             for p in paths]

    os.chdir(root)
    sources = []
    for p in paths:
        try:
            sources.append(load_source(p, args.engine))
        except OSError as e:
            print(f"htap-lint: cannot read {p}: {e}", file=sys.stderr)
            return 2

    if args.dump_ranks or args.write_ranks:
        enum_src = load_source(os.path.relpath(rank_enum, root)
                               if os.path.isabs(rank_enum) else rank_enum,
                               args.engine)
        if args.write_ranks:
            write_rank_table(enum_src, rank_doc)
            print(f"rank table rewritten in {rank_doc}")
        else:
            print(render_rank_table(enum_src, rank_doc))
        return 0

    if args.dump_atomics:
        dump_atomics([s for s in sources
                      if in_scope(s.path, "atomic-order", args.only)])
        return 0

    only = set(args.only)
    findings = []
    atomic_names = collect_atomic_names(sources)
    lock_owning_types = collect_lock_owning_types(sources)
    for src in sources:
        if in_scope(src.path, "raw-mutex", only):
            check_raw_mutex(src, findings)
        if in_scope(src.path, "atomic-order", only):
            check_atomic_order(src, findings, atomic_names)
        if in_scope(src.path, "order-justify", only):
            check_order_justify(src, findings)
        if in_scope(src.path, "guarded-by", only):
            check_guarded_by(src, findings, lock_owning_types)
        if in_scope(src.path, "block-under-latch", only):
            check_block_under_latch(src, findings)
        if in_scope(src.path, "ebr-pin", only):
            check_ebr_pin(src, findings)
    if (not only and not args.paths) or "rank-table" in only:
        try:
            enum_src = load_source(rank_enum, args.engine)
            check_rank_table(enum_src, rank_doc, findings)
        except OSError as e:
            findings.append(Finding("rank-table", rank_enum, 1, str(e)))

    # Apply suppressions and the per-check budget.
    errors = []
    suppressed_counts = {}
    suppression_errors = []
    supp_by_file = {}
    for src in sources:
        supp, bad = collect_suppressions(src)
        supp_by_file[src.path] = supp
        suppression_errors.extend(bad)
    for f in findings:
        reason = supp_by_file.get(f.path, {}).get(f.line, {}).get(f.check)
        if reason:
            f.suppressed = True
            f.reason = reason
            suppressed_counts[f.check] = suppressed_counts.get(f.check, 0) + 1
        else:
            errors.append(f)
    errors.extend(suppression_errors)

    over_budget = []
    for check, count in sorted(suppressed_counts.items()):
        budget = budgets.get(check, 0)
        if count > budget:
            over_budget.append(
                f"[{check}] {count} suppressions exceed the budget of "
                f"{budget} — fix the code or grow the budget in review")
        elif count < budget and not args.ci:
            print(f"note: [{check}] {count} suppressions under budget "
                  f"{budget} — tighten SUPPRESSION_BUDGET")

    for f in sorted(errors, key=lambda f: (f.path, f.line)):
        print(str(f))
    for msg in over_budget:
        print(msg)
    n_files = len(sources)
    n_supp = sum(suppressed_counts.values())
    if errors or over_budget:
        print(f"htap-lint: FAILED — {len(errors)} finding(s), "
              f"{len(over_budget)} budget violation(s) over {n_files} files")
        return 1
    if not args.ci:
        for check, count in sorted(suppressed_counts.items()):
            print(f"  [{check}] {count} justified suppression(s) "
                  f"(budget {budgets.get(check, 0)})")
    print(f"htap-lint: OK — {n_files} files, {n_supp} justified "
          f"suppression(s), 0 findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
