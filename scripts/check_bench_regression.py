#!/usr/bin/env python3
"""Bench regression gate: compare a bench_parallel_join smoke run against
the checked-in baseline and fail on significant slowdowns.

Usage:
    check_bench_regression.py <smoke_log> <baseline_json> [--threshold F]

Both inputs may be raw logs: only lines that parse as a JSON object with a
"bench" key count as records. Records are keyed by every non-metric field
(bench name, thread count, workload shape), so the comparison survives
reordering and interleaved table output.

For throughput metrics (higher is better) the run fails when the new value
drops more than `threshold` below the baseline; for time metrics (lower is
better) when it rises more than `threshold` above it. The default threshold
is 0.25 (25%), wide enough for shared-runner noise while catching real
regressions. A baseline record with no counterpart in the new run is also a
failure (lost coverage); new records absent from the baseline are reported
but pass, so adding benchmarks never blocks CI.

Every compared metric prints its signed drift even on pass (negative =
better than baseline, positive = worse), and the run ends with a
worst-drift summary — so a slow creep toward the threshold is visible in
green CI logs, not just after it finally trips.

Stdlib only — no pip installs in CI.
"""

import argparse
import json
import sys

# Metric direction; every other numeric field is part of the record key.
HIGHER_IS_BETTER = {"probe_rows_per_sec", "speedup", "rows_per_sec",
                    "direct_vs_decode", "row_probe_rows_per_sec",
                    "batch_probe_rows_per_sec", "batch_vs_row",
                    "tpmc", "committed",
                    "ops_per_sec", "txns_per_sec", "olc_vs_coarse",
                    "scaling_efficiency"}
LOWER_IS_BETTER = {"join_ms",
                   "repl_lag_ms", "merge_lag_ms", "txn_p50_ms", "txn_p99_ms"}
# Tracked counters that vary with any behavior change but have no better/
# worse direction: excluded from the record key, never gated.
NEUTRAL = {"aborted", "cross_shard", "client_retries", "rpc_retries",
           "resolver_retries", "elections", "msgs_dropped"}
METRICS = HIGHER_IS_BETTER | LOWER_IS_BETTER | NEUTRAL

# The scale-out sim metrics run in virtual time, so they are deterministic
# (no shared-runner noise) and get a much tighter gate than the wall-clock
# benches. Note converged/state_equal stay in the record key: a run that
# stops converging is a *missing record*, which fails the gate outright.
THRESHOLD_OVERRIDE = {m: 0.05 for m in
                      ("tpmc", "committed", "repl_lag_ms", "merge_lag_ms",
                       "txn_p50_ms", "txn_p99_ms")}
# bench_tp_scaling cells are short wall-clock runs (hundreds of ms in smoke
# mode) that oversubscribe small CI hosts by design, so raw rates swing far
# more than the long-running join/scan benches; the OLC-vs-coarse ratio and
# the scaling-efficiency metric cancel most host noise and get tighter (but
# still generous) gates. The hard 3x evidence lives in the olc_vs_coarse
# baseline rows: a drop below ~2x at 8 threads fails here even on hosts
# where the bench's own host-aware bar relaxed to 2x.
THRESHOLD_OVERRIDE.update({"ops_per_sec": 0.5, "txns_per_sec": 0.5,
                           "olc_vs_coarse": 0.35, "scaling_efficiency": 0.5})


def parse_records(path):
    """Extract JSON bench records from a (possibly mixed) log file."""
    records = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(obj, dict) or "bench" not in obj:
                continue
            key = tuple(
                sorted((k, v) for k, v in obj.items() if k not in METRICS)
            )
            records[key] = {k: v for k, v in obj.items() if k in METRICS}
    return records


def describe(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("smoke_log", help="new run (raw log or JSON lines)")
    ap.add_argument("baseline", help="checked-in baseline JSON lines")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    new = parse_records(args.smoke_log)
    base = parse_records(args.baseline)
    if not base:
        print(f"ERROR: no bench records in baseline {args.baseline}")
        return 2
    if not new:
        print(f"ERROR: no bench records in smoke log {args.smoke_log}")
        return 2

    failures = []
    drifts = []  # (drift, metric, key, arrow) for the worst-drift summary
    for key, base_metrics in sorted(base.items()):
        if key not in new:
            failures.append(f"missing record ({describe(key)})")
            continue
        for metric, base_val in sorted(base_metrics.items()):
            if metric not in new[key] or metric in NEUTRAL or not base_val:
                continue
            new_val = new[key][metric]
            threshold = THRESHOLD_OVERRIDE.get(metric, args.threshold)
            # Normalized drift: positive = worse than baseline regardless of
            # the metric's direction, negative = better.
            if metric in HIGHER_IS_BETTER:
                drift = (base_val - new_val) / base_val
            else:
                drift = (new_val - base_val) / base_val
            arrow = f"{base_val:g} -> {new_val:g}"
            drifts.append((drift, metric, key, arrow))
            status = "FAIL" if drift > threshold else "ok"
            print(f"[{status}] {metric} ({describe(key)}): {arrow} "
                  f"(drift {drift:+.1%}, allowed +{threshold:.0%})")
            if drift > threshold:
                failures.append(f"{metric} ({describe(key)}): {arrow} "
                                f"(drift {drift:+.1%})")

    for key in sorted(new.keys() - base.keys()):
        print(f"[new ] unbaselined record ({describe(key)})")

    if drifts:
        worst = max(drifts)
        best = min(drifts)
        print(f"\nworst drift: {worst[0]:+.1%} {worst[1]} "
              f"({describe(worst[2])}): {worst[3]}")
        print(f"best  drift: {best[0]:+.1%} {best[1]} "
              f"({describe(best[2])}): {best[3]}")

    if failures:
        print(f"\nBench regression gate FAILED ({len(failures)} issue(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nBench regression gate passed "
          f"({len(drifts)} metric(s) compared).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
