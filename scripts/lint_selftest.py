#!/usr/bin/env python3
"""Selftest for scripts/htap_lint.py against tests/lint_fixtures/.

Every check must fire on its `bad/` fixture (exit 1, finding tagged with the
check name) and stay quiet on its `good/` twin (exit 0). The suppression
cases prove justified suppressions are honored and budgeted while malformed
ones are findings themselves, and the rank-table cases prove both drift
directions are caught. Runs from any working directory; the `lint_selftest`
ctest target invokes it from the build tree.

Exit 0 when all cases behave, 1 otherwise (each failing case is printed).
"""

import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "scripts", "htap_lint.py")
FIX = os.path.join(ROOT, "tests", "lint_fixtures")

# (name, extra lint args, expected exit code, substrings expected in output)
CASES = []

PAIRED_CHECKS = (
    "raw-mutex",
    "atomic-order",
    "order-justify",
    "guarded-by",
    "block-under-latch",
    "ebr-pin",
)

for check in PAIRED_CHECKS:
    stem = check.replace("-", "_") + ".cc"
    CASES.append((
        f"bad/{stem} fires {check}",
        ["--only", check, os.path.join(FIX, "bad", stem)],
        1, [f"[{check}]"]))
    CASES.append((
        f"good/{stem} quiet under {check}",
        ["--only", check, os.path.join(FIX, "good", stem)],
        0, ["0 findings"]))

RANK_ENUM = os.path.join(FIX, "rank", "enum.h")
CASES += [
    ("rank-table matched doc passes",
     ["--only", "rank-table", "--rank-enum", RANK_ENUM,
      "--rank-doc", os.path.join(FIX, "rank", "doc_good.md"), RANK_ENUM],
     0, ["0 findings"]),
    ("rank-table numeric drift caught",
     ["--only", "rank-table", "--rank-enum", RANK_ENUM,
      "--rank-doc", os.path.join(FIX, "rank", "doc_drift.md"), RANK_ENUM],
     1, ["[rank-table]", "drifted"]),
    ("rank-table missing row caught",
     ["--only", "rank-table", "--rank-enum", RANK_ENUM,
      "--rank-doc", os.path.join(FIX, "rank", "doc_missing.md"), RANK_ENUM],
     1, ["[rank-table]", "missing from"]),
    # Suppression mechanics. Budgets are pinned explicitly so the repo's
    # real budget values cannot mask a regression here.
    ("justified suppression within budget passes",
     ["--only", "raw-mutex", "--budget", "raw-mutex=1",
      os.path.join(FIX, "suppressed", "raw_mutex_suppressed.cc")],
     0, ["1 justified suppression"]),
    ("justified suppression over budget fails",
     ["--only", "raw-mutex", "--budget", "raw-mutex=0",
      os.path.join(FIX, "suppressed", "raw_mutex_suppressed.cc")],
     1, ["exceed the budget"]),
    ("suppression without justification is a finding",
     ["--only", "raw-mutex", "--budget", "raw-mutex=1",
      os.path.join(FIX, "suppressed", "raw_mutex_unjustified.cc")],
     1, ["lacks a justification"]),
]


def main():
    failures = []
    for name, args, want_code, want_strs in CASES:
        proc = subprocess.run(
            [sys.executable, LINT] + args,
            capture_output=True, text=True)
        out = proc.stdout + proc.stderr
        problems = []
        if proc.returncode != want_code:
            problems.append(
                f"exit {proc.returncode}, wanted {want_code}")
        for s in want_strs:
            if s not in out:
                problems.append(f"output lacks {s!r}")
        if problems:
            failures.append((name, problems, out))
            print(f"FAIL  {name}: {'; '.join(problems)}")
        else:
            print(f"ok    {name}")
    if failures:
        print(f"\nlint_selftest: {len(failures)}/{len(CASES)} case(s) failed")
        for name, _, out in failures:
            print(f"\n--- output of failed case: {name} ---")
            print(out.rstrip())
        return 1
    print(f"lint_selftest: all {len(CASES)} cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
