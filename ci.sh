#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency
# tests (parallel scan/aggregate, columnar, executor, pools, sync,
# scheduler). Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "== tsan: concurrency tests =="
TSAN_TESTS=(parallel_scan_test columnar_test executor_test common_test
            sync_test scheduler_test)
cmake -B build-tsan -S . -DHTAP_TSAN=ON > /dev/null
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "-- $t (tsan)"
  ./build-tsan/tests/"$t" --gtest_brief=1
done

echo "CI OK"
