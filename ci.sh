#!/usr/bin/env bash
# Tier-1 verification, a Release smoke run of the parallel-join bench gated
# against the checked-in BENCH_baseline.json, an ASan+UBSan pass over the
# memory-heavy executor/join/spill tests, and a ThreadSanitizer pass over
# the concurrency tests (parallel scan/aggregate, parallel join, grace join,
# columnar, executor, pools, sync, scheduler).
# Also verifies that no grace-join spill run (htap-spill-*) leaks out of any
# bench or test run.
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${1:-$(nproc)}"

# Grace-join spill runs land in the system temp dir (unless overridden);
# start from a clean slate so the leak check below is meaningful.
SPILL_DIR="${TMPDIR:-/tmp}"
rm -f "$SPILL_DIR"/htap-spill-*

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench smoke: parallel join + grace spill point (identity-checked) =="
cmake --build build -j "$JOBS" --target bench_parallel_join
./build/bench/bench_parallel_join smoke | tee build/bench_smoke.log

echo "== bench regression gate (vs BENCH_baseline.json) =="
python3 scripts/check_bench_regression.py build/bench_smoke.log \
  BENCH_baseline.json

echo "== asan+ubsan: executor/join/spill tests =="
ASAN_TESTS=(executor_test parallel_scan_test parallel_join_test
            grace_join_test columnar_test)
cmake -B build-asan -S . -DHTAP_ASAN=ON > /dev/null
cmake --build build-asan -j "$JOBS" --target "${ASAN_TESTS[@]}"
for t in "${ASAN_TESTS[@]}"; do
  echo "-- $t (asan+ubsan)"
  ./build-asan/tests/"$t" --gtest_brief=1
done

echo "== tsan: concurrency tests =="
TSAN_TESTS=(parallel_scan_test parallel_join_test grace_join_test
            columnar_test executor_test common_test sync_test scheduler_test)
cmake -B build-tsan -S . -DHTAP_TSAN=ON > /dev/null
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "-- $t (tsan)"
  ./build-tsan/tests/"$t" --gtest_brief=1
done

echo "== spill-run leak check =="
leaks=$(find "$SPILL_DIR" -maxdepth 1 -name 'htap-spill-*' 2>/dev/null || true)
if [[ -n "$leaks" ]]; then
  echo "FAIL: leaked spill runs:" >&2
  echo "$leaks" >&2
  exit 1
fi
echo "no leaked htap-spill-* files"

echo "CI OK"
