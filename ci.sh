#!/usr/bin/env bash
# CI pipeline, runnable whole or as one suite (the GitHub workflow fans the
# suites out as matrix jobs with per-job ccache keys):
#
#   ./ci.sh [suite] [jobs]      suite defaults to `all`; a numeric first
#   ./ci.sh [jobs]              argument still means jobs (back-compat)
#
# Suites:
#   tier1  — Release build + full ctest
#   bench  — bench smokes + regression gate (vs BENCH_baseline.json)
#   rank   — -DHTAP_LOCK_RANK=ON: full ctest under the runtime lock-order
#            checker, including the lock_rank death tests
#   asan   — ASan+UBSan over the memory-heavy executor/join/spill tests and
#            the EBR/OLC concurrency tests
#   tsan   — TSan over the concurrency tests (zero suppressions)
#   static — clang thread-safety build (-DHTAP_THREAD_SAFETY=ON, -Werror)
#            — skipped with a notice when clang++ is not installed
#   tidy   — clang-tidy over every first-party TU — skipped with a notice
#            when clang-tidy is not installed
#   lint   — scripts/htap_lint.py project-invariant pass (concurrency
#            discipline, EBR pin safety, rank-table drift) plus its fixture
#            selftest — skipped with a notice when python3 is not installed
#   all    — everything above plus the spill-run leak check
#
# Sanitizer test output is additionally scraped for report markers
# (ThreadSanitizer:, ERROR: AddressSanitizer, runtime error:) so a report
# that does not change the exit code — e.g. under halt_on_error=0 or an
# exitcode-swallowing wrapper — still fails the suite.
# Failures are accumulated per suite (not fail-fast) and the failing tree
# is named in the summary; any failure exits nonzero.
set -euo pipefail
cd "$(dirname "$0")"

SUITE="all"
JOBS="$(nproc)"
if [[ $# -ge 1 ]]; then
  if [[ "$1" =~ ^[0-9]+$ ]]; then
    JOBS="$1"
  else
    SUITE="$1"
    [[ $# -ge 2 ]] && JOBS="$2"
  fi
fi

FAILED_SUITES=()

# run_sanitized <tree> <binary> [args...] — runs one test binary, recording
# (instead of aborting on) failure so every suite reports, tees the output
# to build-<tree>/logs/, and fails on sanitizer report markers even when
# the process exits 0.
run_sanitized() {
  local tree="$1" bin="$2"; shift 2
  local name; name="$(basename "$bin")"
  local log="build-$tree/logs/$name.log"
  mkdir -p "build-$tree/logs"
  echo "-- $name ($tree)"
  local ok=0
  "$@" 2>&1 | tee "$log" || ok=$?
  if ((ok != 0)); then
    echo "FAIL: $name in $tree tree (exit $ok)" >&2
    FAILED_SUITES+=("$tree/$name")
  elif grep -qE 'ThreadSanitizer:|ERROR: AddressSanitizer|ERROR: LeakSanitizer|runtime error:' "$log"; then
    echo "FAIL: $name in $tree tree (sanitizer report at exit 0, see $log)" >&2
    FAILED_SUITES+=("$tree/$name-report")
  fi
}

# Grace-join spill runs land in the system temp dir (unless overridden);
# start from a clean slate so the leak check below is meaningful.
SPILL_DIR="${TMPDIR:-/tmp}"
rm -f "$SPILL_DIR"/htap-spill-*

suite_tier1() {
  echo "== tier-1: build + ctest =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

suite_bench() {
  echo "== bench smoke: parallel join + grace spill + batch-vs-row (1.5x bar) =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target bench_parallel_join
  if ! ./build/bench/bench_parallel_join smoke | tee build/bench_smoke.log
  then
    echo "FAIL: parallel join smoke (batch-vs-row 1.5x acceptance bar)" >&2
    FAILED_SUITES+=("bench/parallel-join")
  fi

  echo "== bench smoke: vectorized scan (compressed-domain vs decode, 3x bar) =="
  cmake --build build -j "$JOBS" --target bench_vectorized_scan
  if ! ./build/bench/bench_vectorized_scan smoke | tee -a build/bench_smoke.log
  then
    echo "FAIL: vectorized scan smoke (3x acceptance bar)" >&2
    FAILED_SUITES+=("bench/vectorized-scan")
  fi

  echo "== bench smoke: TP scaling (OLC vs coarse latch, host-aware bar) =="
  cmake --build build -j "$JOBS" --target bench_tp_scaling
  # The OLC-vs-coarse bar is enforced inside the bench (3x with >= 4 cores,
  # 2x on smaller hosts); the content-hash identity check always hard-fails.
  if ! ./build/bench/bench_tp_scaling smoke | tee -a build/bench_smoke.log
  then
    echo "FAIL: tp scaling smoke (OLC-vs-coarse bar or identity check)" >&2
    FAILED_SUITES+=("bench/tp-scaling")
  fi

  echo "== bench smoke: scale-out cluster (determinism + Table 1 curves) =="
  cmake --build build -j "$JOBS" --target bench_scaleout
  # Run twice and byte-compare: the sim is virtual-time-deterministic, so any
  # diff means nondeterminism crept into the cluster model. The run itself
  # fails if a config loses committed work or fails to converge.
  if ./build/bench/bench_scaleout smoke > build/bench_scaleout_1.log &&
     ./build/bench/bench_scaleout smoke > build/bench_scaleout_2.log &&
     cmp -s build/bench_scaleout_1.log build/bench_scaleout_2.log; then
    cat build/bench_scaleout_1.log | tee -a build/bench_smoke.log
  else
    echo "FAIL: scaleout smoke (nondeterministic output or lost work)" >&2
    diff build/bench_scaleout_1.log build/bench_scaleout_2.log >&2 || true
    FAILED_SUITES+=("bench/scaleout")
  fi

  echo "== bench regression gate (vs BENCH_baseline.json) =="
  # Accumulated, not fail-fast: a throughput blip on a noisy runner must not
  # mask correctness-suite results below.
  if ! python3 scripts/check_bench_regression.py build/bench_smoke.log \
      BENCH_baseline.json; then
    echo "FAIL: bench regression gate" >&2
    FAILED_SUITES+=("bench/regression-gate")
  fi
}

suite_rank() {
  echo "== lock-rank: full ctest under the runtime lock-order checker =="
  cmake -B build-rank -S . -DHTAP_LOCK_RANK=ON > /dev/null
  cmake --build build-rank -j "$JOBS"
  if ! ctest --test-dir build-rank --output-on-failure -j "$JOBS"; then
    echo "FAIL: ctest in lock-rank tree" >&2
    FAILED_SUITES+=("rank/ctest")
  fi
}

suite_asan() {
  echo "== asan+ubsan: executor/join/spill + EBR/OLC tests =="
  local ASAN_TESTS=(executor_test parallel_scan_test parallel_join_test
                    grace_join_test columnar_test vectorized_exec_test
                    vectorized_join_test encoding_property_test
                    thread_safety_regression_test
                    ebr_test tp_scaling_test
                    sim_test raft_test dist_db_test)
  cmake -B build-asan -S . -DHTAP_ASAN=ON > /dev/null
  cmake --build build-asan -j "$JOBS" --target "${ASAN_TESTS[@]}"
  for t in "${ASAN_TESTS[@]}"; do
    run_sanitized asan "$t" "./build-asan/tests/$t" --gtest_brief=1
  done
}

suite_tsan() {
  echo "== tsan: concurrency tests =="
  local TSAN_TESTS=(parallel_scan_test parallel_join_test grace_join_test
                    columnar_test executor_test common_test sync_test
                    scheduler_test vectorized_exec_test vectorized_join_test
                    thread_safety_regression_test
                    ebr_test tp_scaling_test
                    sim_test raft_test dist_db_test)
  cmake -B build-tsan -S . -DHTAP_TSAN=ON > /dev/null
  cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    run_sanitized tsan "$t" "./build-tsan/tests/$t" --gtest_brief=1
  done
}

suite_static() {
  echo "== clang thread-safety analysis (-Werror=thread-safety) =="
  if command -v clang++ > /dev/null 2>&1; then
    CC=clang CXX=clang++ cmake -B build-ts -S . -DHTAP_THREAD_SAFETY=ON \
      > /dev/null
    if ! cmake --build build-ts -j "$JOBS"; then
      echo "FAIL: thread-safety analysis in build-ts tree" >&2
      FAILED_SUITES+=("ts/build")
    fi
  else
    echo "SKIPPED: clang++ not installed (the GitHub workflow runs this gate)"
  fi
}

suite_tidy() {
  echo "== clang-tidy (bugprone-*, concurrency-*, performance-*) =="
  if command -v clang-tidy > /dev/null 2>&1; then
    # Use the thread-safety tree's compile_commands.json when clang built it
    # above, else the Release tree's.
    local TIDY_BUILD=build
    [[ -f build-ts/compile_commands.json ]] && TIDY_BUILD=build-ts
    if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
      cmake -B build -S . > /dev/null
    fi
    # First-party TUs minus suppressed paths (.clang-tidy-suppressions:
    # substring-per-line, comments/blank lines ignored; third-party only).
    local TIDY_FILES
    mapfile -t TIDY_FILES < <(
      find src tests bench examples -name '*.cc' |
        grep -v -F -f <(grep -v '^\s*#' .clang-tidy-suppressions |
                        grep -v '^\s*$' || true) || true
    )
    if ! printf '%s\n' "${TIDY_FILES[@]}" |
         xargs -P "$JOBS" -n 8 clang-tidy -p "$TIDY_BUILD" --quiet; then
      echo "FAIL: clang-tidy findings (tidy tree: $TIDY_BUILD)" >&2
      FAILED_SUITES+=("tidy/clang-tidy")
    fi
  else
    echo "SKIPPED: clang-tidy not installed (the GitHub workflow runs this gate)"
  fi
}

suite_lint() {
  echo "== htap-lint: project invariants (DESIGN.md section 16) =="
  if command -v python3 > /dev/null 2>&1; then
    if ! python3 scripts/lint_selftest.py; then
      echo "FAIL: lint selftest (a check no longer fires on its fixture)" >&2
      FAILED_SUITES+=("lint/selftest")
    fi
    if ! python3 scripts/htap_lint.py --ci; then
      echo "FAIL: htap-lint findings (run scripts/htap_lint.py locally)" >&2
      FAILED_SUITES+=("lint/htap-lint")
    fi
  else
    echo "SKIPPED: python3 not installed (the GitHub workflow runs this gate)"
  fi
}

suite_spill_check() {
  echo "== spill-run leak check =="
  local leaks
  leaks=$(find "$SPILL_DIR" -maxdepth 1 -name 'htap-spill-*' 2>/dev/null || true)
  if [[ -n "$leaks" ]]; then
    echo "FAIL: leaked spill runs:" >&2
    echo "$leaks" >&2
    FAILED_SUITES+=("spill/leak-check")
  else
    echo "no leaked htap-spill-* files"
  fi
}

case "$SUITE" in
  tier1)  suite_tier1 ;;
  bench)  suite_bench ;;
  rank)   suite_rank ;;
  asan)   suite_asan ;;
  tsan)   suite_tsan ;;
  static) suite_static ;;
  tidy)   suite_tidy ;;
  lint)   suite_lint ;;
  all)
    suite_tier1
    suite_bench
    suite_rank
    suite_asan
    suite_tsan
    suite_static
    suite_tidy
    suite_lint
    suite_spill_check
    ;;
  *)
    echo "unknown suite: $SUITE (want all|tier1|bench|rank|asan|tsan|static|tidy|lint)" >&2
    exit 2
    ;;
esac

if ((${#FAILED_SUITES[@]} > 0)); then
  echo "CI FAILED in: ${FAILED_SUITES[*]}" >&2
  exit 1
fi
echo "CI OK"
