# Empty dependencies file for example_fraud_detection.
# This may be replaced when dependencies are built.
