file(REMOVE_RECURSE
  "CMakeFiles/example_architecture_tour.dir/architecture_tour.cpp.o"
  "CMakeFiles/example_architecture_tour.dir/architecture_tour.cpp.o.d"
  "example_architecture_tour"
  "example_architecture_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_architecture_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
