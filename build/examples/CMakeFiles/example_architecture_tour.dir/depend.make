# Empty dependencies file for example_architecture_tour.
# This may be replaced when dependencies are built.
