file(REMOVE_RECURSE
  "CMakeFiles/example_retail_analytics.dir/retail_analytics.cpp.o"
  "CMakeFiles/example_retail_analytics.dir/retail_analytics.cpp.o.d"
  "example_retail_analytics"
  "example_retail_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retail_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
