# Empty dependencies file for example_retail_analytics.
# This may be replaced when dependencies are built.
