
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/adapt.cc" "src/CMakeFiles/htap.dir/benchlib/adapt.cc.o" "gcc" "src/CMakeFiles/htap.dir/benchlib/adapt.cc.o.d"
  "/root/repo/src/benchlib/chbench.cc" "src/CMakeFiles/htap.dir/benchlib/chbench.cc.o" "gcc" "src/CMakeFiles/htap.dir/benchlib/chbench.cc.o.d"
  "/root/repo/src/benchlib/driver.cc" "src/CMakeFiles/htap.dir/benchlib/driver.cc.o" "gcc" "src/CMakeFiles/htap.dir/benchlib/driver.cc.o.d"
  "/root/repo/src/columnar/column_table.cc" "src/CMakeFiles/htap.dir/columnar/column_table.cc.o" "gcc" "src/CMakeFiles/htap.dir/columnar/column_table.cc.o.d"
  "/root/repo/src/columnar/encoding.cc" "src/CMakeFiles/htap.dir/columnar/encoding.cc.o" "gcc" "src/CMakeFiles/htap.dir/columnar/encoding.cc.o.d"
  "/root/repo/src/columnar/segment.cc" "src/CMakeFiles/htap.dir/columnar/segment.cc.o" "gcc" "src/CMakeFiles/htap.dir/columnar/segment.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/htap.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/htap.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/htap.dir/core/database.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/database.cc.o.d"
  "/root/repo/src/core/engine_deltamain.cc" "src/CMakeFiles/htap.dir/core/engine_deltamain.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/engine_deltamain.cc.o.d"
  "/root/repo/src/core/engine_disk.cc" "src/CMakeFiles/htap.dir/core/engine_disk.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/engine_disk.cc.o.d"
  "/root/repo/src/core/engine_dist.cc" "src/CMakeFiles/htap.dir/core/engine_dist.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/engine_dist.cc.o.d"
  "/root/repo/src/core/engine_inmemory.cc" "src/CMakeFiles/htap.dir/core/engine_inmemory.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/engine_inmemory.cc.o.d"
  "/root/repo/src/core/query_runner.cc" "src/CMakeFiles/htap.dir/core/query_runner.cc.o" "gcc" "src/CMakeFiles/htap.dir/core/query_runner.cc.o.d"
  "/root/repo/src/delta/delta.cc" "src/CMakeFiles/htap.dir/delta/delta.cc.o" "gcc" "src/CMakeFiles/htap.dir/delta/delta.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/htap.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/htap.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/htap.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/htap.dir/exec/expression.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/htap.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/htap.dir/index/btree.cc.o.d"
  "/root/repo/src/opt/column_advisor.cc" "src/CMakeFiles/htap.dir/opt/column_advisor.cc.o" "gcc" "src/CMakeFiles/htap.dir/opt/column_advisor.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/htap.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/htap.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/htap.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/htap.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sim/dist_db.cc" "src/CMakeFiles/htap.dir/sim/dist_db.cc.o" "gcc" "src/CMakeFiles/htap.dir/sim/dist_db.cc.o.d"
  "/root/repo/src/sim/raft.cc" "src/CMakeFiles/htap.dir/sim/raft.cc.o" "gcc" "src/CMakeFiles/htap.dir/sim/raft.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/htap.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/htap.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/htap.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/htap.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/disk_row_store.cc" "src/CMakeFiles/htap.dir/storage/disk_row_store.cc.o" "gcc" "src/CMakeFiles/htap.dir/storage/disk_row_store.cc.o.d"
  "/root/repo/src/storage/mvcc_row_store.cc" "src/CMakeFiles/htap.dir/storage/mvcc_row_store.cc.o" "gcc" "src/CMakeFiles/htap.dir/storage/mvcc_row_store.cc.o.d"
  "/root/repo/src/sync/sync.cc" "src/CMakeFiles/htap.dir/sync/sync.cc.o" "gcc" "src/CMakeFiles/htap.dir/sync/sync.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/CMakeFiles/htap.dir/txn/txn_manager.cc.o" "gcc" "src/CMakeFiles/htap.dir/txn/txn_manager.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/htap.dir/types/value.cc.o" "gcc" "src/CMakeFiles/htap.dir/types/value.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/htap.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/htap.dir/wal/recovery.cc.o.d"
  "/root/repo/src/wal/wal.cc" "src/CMakeFiles/htap.dir/wal/wal.cc.o" "gcc" "src/CMakeFiles/htap.dir/wal/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
