# Empty dependencies file for htap.
# This may be replaced when dependencies are built.
