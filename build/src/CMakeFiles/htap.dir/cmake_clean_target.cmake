file(REMOVE_RECURSE
  "libhtap.a"
)
