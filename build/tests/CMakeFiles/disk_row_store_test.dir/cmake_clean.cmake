file(REMOVE_RECURSE
  "CMakeFiles/disk_row_store_test.dir/disk_row_store_test.cc.o"
  "CMakeFiles/disk_row_store_test.dir/disk_row_store_test.cc.o.d"
  "disk_row_store_test"
  "disk_row_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_row_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
