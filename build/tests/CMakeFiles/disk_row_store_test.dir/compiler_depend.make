# Empty compiler generated dependencies file for disk_row_store_test.
# This may be replaced when dependencies are built.
