# Empty compiler generated dependencies file for query_runner_test.
# This may be replaced when dependencies are built.
