file(REMOVE_RECURSE
  "CMakeFiles/dist_db_test.dir/dist_db_test.cc.o"
  "CMakeFiles/dist_db_test.dir/dist_db_test.cc.o.d"
  "dist_db_test"
  "dist_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
