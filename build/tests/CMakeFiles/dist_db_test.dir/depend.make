# Empty dependencies file for dist_db_test.
# This may be replaced when dependencies are built.
