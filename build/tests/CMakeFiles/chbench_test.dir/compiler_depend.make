# Empty compiler generated dependencies file for chbench_test.
# This may be replaced when dependencies are built.
