file(REMOVE_RECURSE
  "CMakeFiles/chbench_test.dir/chbench_test.cc.o"
  "CMakeFiles/chbench_test.dir/chbench_test.cc.o.d"
  "chbench_test"
  "chbench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
