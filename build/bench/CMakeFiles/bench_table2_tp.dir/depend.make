# Empty dependencies file for bench_table2_tp.
# This may be replaced when dependencies are built.
