file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tp.dir/bench_table2_tp.cc.o"
  "CMakeFiles/bench_table2_tp.dir/bench_table2_tp.cc.o.d"
  "bench_table2_tp"
  "bench_table2_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
