# Empty dependencies file for bench_fig1_dataflow.
# This may be replaced when dependencies are built.
