file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_dataflow.dir/bench_fig1_dataflow.cc.o"
  "CMakeFiles/bench_fig1_dataflow.dir/bench_fig1_dataflow.cc.o.d"
  "bench_fig1_dataflow"
  "bench_fig1_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
