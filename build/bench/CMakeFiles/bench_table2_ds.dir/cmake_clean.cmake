file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ds.dir/bench_table2_ds.cc.o"
  "CMakeFiles/bench_table2_ds.dir/bench_table2_ds.cc.o.d"
  "bench_table2_ds"
  "bench_table2_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
