file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rs.dir/bench_table2_rs.cc.o"
  "CMakeFiles/bench_table2_rs.dir/bench_table2_rs.cc.o.d"
  "bench_table2_rs"
  "bench_table2_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
