# Empty dependencies file for bench_table2_rs.
# This may be replaced when dependencies are built.
