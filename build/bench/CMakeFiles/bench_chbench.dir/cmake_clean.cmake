file(REMOVE_RECURSE
  "CMakeFiles/bench_chbench.dir/bench_chbench.cc.o"
  "CMakeFiles/bench_chbench.dir/bench_chbench.cc.o.d"
  "bench_chbench"
  "bench_chbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
