# Empty compiler generated dependencies file for bench_chbench.
# This may be replaced when dependencies are built.
