file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_qo.dir/bench_table2_qo.cc.o"
  "CMakeFiles/bench_table2_qo.dir/bench_table2_qo.cc.o.d"
  "bench_table2_qo"
  "bench_table2_qo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_qo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
