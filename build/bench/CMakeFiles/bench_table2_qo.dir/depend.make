# Empty dependencies file for bench_table2_qo.
# This may be replaced when dependencies are built.
