file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ap.dir/bench_table2_ap.cc.o"
  "CMakeFiles/bench_table2_ap.dir/bench_table2_ap.cc.o.d"
  "bench_table2_ap"
  "bench_table2_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
