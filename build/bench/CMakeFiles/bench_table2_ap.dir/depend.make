# Empty dependencies file for bench_table2_ap.
# This may be replaced when dependencies are built.
